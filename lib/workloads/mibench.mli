(** The full 35-program MiBench-like suite (section 4.1 of the paper).

    Every benchmark named on figure 4's x-axis is present, grouped in the
    original MiBench categories (automotive, consumer, network, office,
    security, telecomm).  Each program's docstring — [Spec.description] —
    records which real MiBench behaviour it models; the test suite
    enforces the characteristics the paper's narrative relies on
    (rijndael's multi-KB straight-line rounds, fft's MAC density, say's
    call pressure, ...). *)

val all : Spec.t array
(** The 35 workloads. *)

val names : string array

val by_name : string -> Spec.t
(** Raises [Invalid_argument] on an unknown benchmark. *)

val program_of : Spec.t -> Ir.Types.program
(** Build (memoised — builders are deterministic and programs are
    immutable). *)
