(** The "office" suite: gs, ispell, say, search.

    gs is call- and branch-heavy with bulky cold paths; ispell and say are
    dominated by small helper calls (the programs figure 8 shows living or
    dying by the inlining flags); search is the suite's biggest winner —
    short counted inner loops with compile-time trip counts that reward
    aggressive unrolling (1.94x average in the paper). *)

open Ir.Types
module B = Ir.Builder
module K = Kernels

let gs =
  Spec.make ~name:"gs" ~suite:"office"
    ~description:
      "Ghostscript-like interpreter: dispatch over operator kinds with \
       helper calls, bulky rarely-taken error paths, and redundant \
       operand decoding — exercises reordering, inlining and GCSE \
       together."
    (fun () ->
      let b = B.create () in
      let ops =
        B.array b "ops" ~words:3072
          ~init:(Pseudo_random { seed = 89; bound = 1 lsl 16 })
      in
      let stack = B.array b "stack" ~words:512 ~init:Zeros in
      K.def_leaf_scale b "op_moveto" ~m:3 ~a:17 ~s:1;
      K.def_leaf_scale b "op_lineto" ~m:7 ~a:5 ~s:2;
      K.def_helper_mix ~steps:14 b "op_curveto";
      B.func b "main" ~nparams:0 (fun fb _ ->
          let acc = B.mov fb (Imm 0) in
          B.counted_loop fb ~from:0 ~limit:(Imm 3072) ~step:1 (fun i ->
              let ob, oo = K.word_addr fb ~base:ops i in
              let op = B.load fb ob oo in
              let kind = B.alu fb And (Reg op) (Imm 3) in
              let c0 = B.cmp fb Eq (Reg kind) (Imm 0) in
              B.if_ fb c0
                ~then_:(fun () ->
                  let r = B.call fb "op_moveto" [ Reg op ] in
                  B.emit fb (Alu { dst = acc; op = Add; a = Reg acc; b = Reg r }))
                ~else_:(fun () ->
                  let c1 = B.cmp fb Eq (Reg kind) (Imm 1) in
                  B.if_ fb c1
                    ~then_:(fun () ->
                      let r = B.call fb "op_lineto" [ Reg op ] in
                      B.emit fb
                        (Alu { dst = acc; op = Xor; a = Reg acc; b = Reg r }))
                    ~else_:(fun () ->
                      let r = B.call fb "op_curveto" [ Reg op; Reg acc ] in
                      B.emit fb
                        (Alu { dst = acc; op = Add; a = Reg acc; b = Reg r })));
              let slot = B.alu fb And (Reg i) (Imm 511) in
              let sb, so = K.word_addr fb ~base:stack slot in
              B.store fb (Reg acc) sb so);
          let e = K.with_cold_path fb ~src:ops ~words:1024 ~sentinel:77 ~cold_work:24 in
          let sum = K.reduce_xor fb ~base:stack ~words:512 (Reg e) in
          B.terminate fb (Return (Some (Reg sum))));
      B.finish b ~entry:"main")

let ispell =
  Spec.make ~name:"ispell" ~suite:"office"
    ~description:
      "Spell checking: per-word hashing through a chain of small helper \
       calls plus a hash-table probe — figure 8 marks the inlining \
       parameters as this program's dominant flags."
    (fun () ->
      let b = B.create () in
      let words_arr =
        B.array b "words" ~words:2048
          ~init:(Pseudo_random { seed = 97; bound = 1 lsl 20 })
      in
      let table =
        B.array b "table" ~words:1024
          ~init:(Pseudo_random { seed = 101; bound = 1 lsl 20 })
      in
      (* The hash mix sits just above the default inline threshold, so
         -O3 leaves it called while larger max-inline-insns-auto values
         splice it in — figure 8's "inlining carries ispell". *)
      K.def_helper_mix ~steps:13 b "hash_mix";
      B.func b "hash_word" ~nparams:1 (fun fb params ->
          let w = List.nth params 0 in
          let h1 = B.call fb "hash_mix" [ Reg w; Imm 31 ] in
          let h2 = B.call fb "hash_mix" [ Reg h1; Imm 7 ] in
          let r = B.alu fb Xor (Reg h1) (Reg h2) in
          B.terminate fb (Return (Some (Reg r))));
      B.func b "main" ~nparams:0 (fun fb _ ->
          let acc = B.mov fb (Imm 0) in
          B.counted_loop fb ~from:0 ~limit:(Imm 2048) ~step:1 (fun i ->
              let wb, wo = K.word_addr fb ~base:words_arr i in
              let w = B.load fb wb wo in
              let h = B.call fb "hash_word" [ Reg w ] in
              let slot = B.alu fb And (Reg h) (Imm 1023) in
              let tb, to_ = K.word_addr fb ~base:table slot in
              let probe = B.load fb tb to_ in
              let hit = B.cmp fb Eq (Reg probe) (Reg w) in
              B.if_ fb hit
                ~then_:(fun () ->
                  B.emit fb (Alu { dst = acc; op = Add; a = Reg acc; b = Imm 1 }))
                ~else_:(fun () ->
                  B.emit fb (Alu { dst = acc; op = Xor; a = Reg acc; b = Reg h })));
          B.terminate fb (Return (Some (Reg acc))));
      B.finish b ~entry:"main")

let say =
  Spec.make ~name:"say" ~suite:"office"
    ~description:
      "Speech synthesis (rsynth): phoneme-to-parameter conversion through \
       deep chains of tiny arithmetic helpers, then a smoothing filter — \
       call overhead dominates, tail positions everywhere (sibling-call \
       fodder)."
    (fun () ->
      let b = B.create () in
      let phon =
        B.array b "phon" ~words:1536
          ~init:(Pseudo_random { seed = 103; bound = 64 })
      in
      let wave = B.array b "wave" ~words:1536 ~init:Zeros in
      K.def_helper_mix ~steps:13 b "formant1";
      K.def_helper_mix ~steps:12 b "formant2";
      (* Tail-call chain: each stage ends by returning the next stage. *)
      B.func b "stage2" ~nparams:1 (fun fb params ->
          let x = List.nth params 0 in
          let r = B.call fb "formant2" [ Reg x; Imm 5 ] in
          B.terminate fb (Return (Some (Reg r))));
      B.func b "stage1" ~nparams:1 (fun fb params ->
          let x = List.nth params 0 in
          let t = B.call fb "formant1" [ Reg x; Imm 13 ] in
          let r = B.call fb "stage2" [ Reg t ] in
          B.terminate fb (Return (Some (Reg r))));
      B.func b "main" ~nparams:0 (fun fb _ ->
          K.map_with_call fb ~callee:"stage1" ~src:phon ~dst:wave ~words:1536;
          let acc = K.reduce_xor fb ~base:wave ~words:1536 (Imm 0) in
          B.terminate fb (Return (Some (Reg acc))));
      B.finish b ~entry:"main")

let search =
  Spec.make ~name:"search" ~suite:"office"
    ~description:
      "String search: Boyer-Moore-ish scanning with short counted inner \
       loops over pattern windows (compile-time trip counts) — the \
       unrolling flags carry this program, matching its 1.94x average in \
       figure 6."
    (fun () ->
      let b = B.create () in
      let text =
        B.array b "text" ~words:6144
          ~init:(Pseudo_random { seed = 107; bound = 32 })
      in
      B.func b "main" ~nparams:0 (fun fb _ ->
          let matches = B.mov fb (Imm 0) in
          (* Outer scan; tiny counted inner compare loop against immediate
             pattern characters (trip count 16, divisible by every unroll
             factor) — the unrolling showcase. *)
          B.counted_loop fb ~from:0 ~limit:(Imm 6120) ~step:2 (fun pos ->
              let score = B.mov fb (Imm 0) in
              B.counted_loop fb ~from:0 ~limit:(Imm 16) ~step:1 (fun k ->
                  let idx = B.alu fb Add (Reg pos) (Reg k) in
                  let tb, to_ = K.word_addr fb ~base:text idx in
                  let tc = B.load fb tb to_ in
                  let eq = B.cmp fb Eq (Reg tc) (Imm 17) in
                  B.emit fb
                    (Alu { dst = score; op = Add; a = Reg score; b = Reg eq }));
              let full = B.cmp fb Ge (Reg score) (Imm 3) in
              B.if_ fb full
                ~then_:(fun () ->
                  B.emit fb
                    (Alu { dst = matches; op = Add; a = Reg matches; b = Reg pos }))
                ~else_:(fun () -> ()));
          B.terminate fb (Return (Some (Reg matches))));
      B.finish b ~entry:"main")

let all = [ gs; ispell; say; search ]
