(** The "consumer" suite: JPEG codec pair, lame, madplay, the four tiff
    filters and the lout typesetter.

    The media codecs are MAC/table bound with mid-sized inner kernels;
    madplay carries a big switch-like decoder body (unrolled huffman
    stages) that makes it I-cache sensitive on small configurations, as in
    the paper's figure 1 example; the tiff filters are short streaming
    kernels, each with one signature optimisation opportunity. *)

open Ir.Types
module B = Ir.Builder
module K = Kernels

let dct_block fb ~src ~dst ~words =
  (* 8-point butterfly-ish transform per group, MAC heavy. *)
  B.counted_loop fb ~from:0 ~limit:(Imm (words / 8)) ~step:1 (fun g ->
      let base = B.shift fb Lsl (Reg g) (Imm 5) in
      let acc = ref (B.mov fb (Imm 0)) in
      for k = 0 to 7 do
        let off = B.alu fb Add (Reg base) (Imm (4 * k)) in
        let v = B.load fb (Imm src) (Reg off) in
        let m = B.mac fb (Reg !acc) (Reg v) (Imm (3 + (2 * k))) in
        acc := m
      done;
      let off = B.shift fb Lsl (Reg g) (Imm 2) in
      B.store fb (Reg !acc) (Imm dst) (Reg off))

let cjpeg =
  Spec.make ~name:"cjpeg" ~suite:"consumer"
    ~description:
      "JPEG compression: blocked DCT-style MAC kernels feeding a \
       quantisation map with redundant address arithmetic (CSE fodder)."
    (fun () ->
      let b = B.create () in
      let img =
        B.array b "img" ~words:4096 ~init:(Pseudo_random { seed = 5; bound = 256 })
      in
      let coef = B.array b "coef" ~words:512 ~init:Zeros in
      let quant = B.array b "quant" ~words:512 ~init:Zeros in
      B.func b "main" ~nparams:0 (fun fb _ ->
          dct_block fb ~src:img ~dst:coef ~words:4096;
          K.redundant_expr_loop fb ~src:coef ~dst:quant ~words:512;
          let acc = K.reduce_xor fb ~base:quant ~words:512 (Imm 0) in
          B.terminate fb (Return (Some (Reg acc))));
      B.finish b ~entry:"main")

let djpeg =
  Spec.make ~name:"djpeg" ~suite:"consumer"
    ~description:
      "JPEG decompression: inverse-transform MACs plus a clamping pass \
       with foldable range checks (VRP fodder); larger output than input."
    (fun () ->
      let b = B.create () in
      let coef =
        B.array b "coef" ~words:2048
          ~init:(Pseudo_random { seed = 7; bound = 2048 })
      in
      let img = B.array b "img" ~words:2048 ~init:Zeros in
      let final = B.array b "final" ~words:2048 ~init:Zeros in
      B.func b "main" ~nparams:0 (fun fb _ ->
          dct_block fb ~src:coef ~dst:img ~words:2048;
          K.range_checked_loop fb ~src:img ~dst:final ~words:2048;
          let acc = K.reduce_xor fb ~base:final ~words:2048 (Imm 0) in
          B.terminate fb (Return (Some (Reg acc))));
      B.finish b ~entry:"main")

let lame =
  Spec.make ~name:"lame" ~suite:"consumer"
    ~description:
      "MP3 encoding: long MAC-bound filterbank (dot products over sliding \
       windows) with a helper-function psychoacoustic model — call and \
       MAC heavy with a mid-sized data set."
    (fun () ->
      let b = B.create () in
      let pcm =
        B.array b "pcm" ~words:3072
          ~init:(Pseudo_random { seed = 13; bound = 65536 })
      in
      let win =
        B.array b "win" ~words:512 ~init:(Ramp { start = 3; step = 7 })
      in
      let sub = B.array b "sub" ~words:512 ~init:Zeros in
      K.def_helper_mix b "psy_model";
      B.func b "main" ~nparams:0 (fun fb _ ->
          B.counted_loop fb ~from:0 ~limit:(Imm 512) ~step:1 (fun i ->
              let base, off = K.word_addr fb ~base:pcm i in
              let x = B.load fb base off in
              let wb, wo = K.word_addr fb ~base:win i in
              let w = B.load fb wb wo in
              let m = B.mac fb (Reg x) (Reg w) (Reg x) in
              let p = B.call fb "psy_model" [ Reg m; Reg w ] in
              let ob, oo = K.word_addr fb ~base:sub i in
              B.store fb (Reg p) ob oo);
          let d = K.mac_dot fb ~a:sub ~b:win ~words:512 in
          let acc = K.reduce_xor fb ~base:sub ~words:512 (Reg d) in
          B.terminate fb (Return (Some (Reg acc))));
      B.finish b ~entry:"main")

let madplay =
  Spec.make ~name:"madplay" ~suite:"consumer"
    ~description:
      "MP3 decoding: two fat source-unrolled huffman/synthesis stages \
       (large straight-line bodies) over a lookup table — the program is \
       I-cache sensitive, so code-expanding flags must be picked per \
       configuration, as in figure 1."
    (fun () ->
      let b = B.create () in
      let state =
        B.array b "state" ~words:256
          ~init:(Pseudo_random { seed = 19; bound = 4096 })
      in
      let huff =
        B.array b "huff" ~words:1024
          ~init:(Pseudo_random { seed = 29; bound = 1 lsl 20 })
      in
      let pcmout = B.array b "pcmout" ~words:1024 ~init:Zeros in
      K.def_helper_mix ~steps:10 b "synth_filter";
      B.func b "main" ~nparams:0 (fun fb _ ->
          let a1 =
            K.crypto_rounds_with_calls fb ~state ~sbox:huff ~sbox_words:1024
              ~rounds:96 ~unroll:64 ~helper:"synth_filter" ~calls:9
          in
          K.stream_map fb ~src:huff ~dst:pcmout ~words:1024 ~stride:1 ~work:2;
          let acc = K.reduce_xor fb ~base:pcmout ~words:1024 (Reg a1) in
          B.terminate fb (Return (Some (Reg acc))));
      B.finish b ~entry:"main")

let tiff2bw =
  Spec.make ~name:"tiff2bw" ~suite:"consumer"
    ~description:
      "TIFF to black-and-white: in-place luminance threshold with a \
       redundant double store per pixel (dead-store/store-motion fodder)."
    (fun () ->
      let b = B.create () in
      let pix =
        B.array b "pix" ~words:6144
          ~init:(Pseudo_random { seed = 43; bound = 1 lsl 24 })
      in
      B.func b "main" ~nparams:0 (fun fb _ ->
          K.double_store_loop fb ~buf:pix ~words:6144;
          let acc = K.reduce_xor fb ~base:pix ~words:6144 (Imm 0) in
          B.terminate fb (Return (Some (Reg acc))));
      B.finish b ~entry:"main")

let tiff2rgba =
  Spec.make ~name:"tiff2rgba" ~suite:"consumer"
    ~description:
      "TIFF to RGBA: pure channel-expansion streaming over a large frame \
       — D-cache bandwidth bound, little compute, flat optimisation \
       response (figure 4's left group)."
    (fun () ->
      let b = B.create () in
      let src =
        B.array b "src" ~words:8192
          ~init:(Pseudo_random { seed = 47; bound = 1 lsl 24 })
      in
      let dst = B.array b "dst" ~words:8192 ~init:Zeros in
      B.func b "main" ~nparams:0 (fun fb _ ->
          K.stream_map fb ~src ~dst ~words:8192 ~stride:1 ~work:1;
          let acc = K.reduce_xor fb ~base:dst ~words:8192 (Imm 0) in
          B.terminate fb (Return (Some (Reg acc))));
      B.finish b ~entry:"main")

let tiffdither =
  Spec.make ~name:"tiffdither" ~suite:"consumer"
    ~description:
      "TIFF dithering: error-diffusion over pixels with a per-pixel \
       mode test on an invariant flag — prime unswitching fodder."
    (fun () ->
      let b = B.create () in
      let src =
        B.array b "src" ~words:4096
          ~init:(Pseudo_random { seed = 53; bound = 256 })
      in
      let dst = B.array b "dst" ~words:4096 ~init:Zeros in
      B.func b "main" ~nparams:0 (fun fb _ ->
          K.mode_switched_loop fb ~src ~dst ~words:4096 ~mode:1;
          K.mode_switched_loop fb ~src:dst ~dst:src ~words:4096 ~mode:0;
          let acc = K.reduce_xor fb ~base:src ~words:4096 (Imm 0) in
          B.terminate fb (Return (Some (Reg acc))));
      B.finish b ~entry:"main")

let tiffmedian =
  Spec.make ~name:"tiffmedian" ~suite:"consumer"
    ~description:
      "TIFF median-cut quantisation: histogram construction with indirect \
       table updates — poor spatial locality in a mid-sized table, \
       unpredictable D-cache behaviour."
    (fun () ->
      let b = B.create () in
      let src =
        B.array b "src" ~words:4096
          ~init:(Pseudo_random { seed = 59; bound = 1 lsl 16 })
      in
      let hist = B.array b "hist" ~words:2048 ~init:Zeros in
      B.func b "main" ~nparams:0 (fun fb _ ->
          let acc = K.table_lookup fb ~index:src ~table:hist ~table_words:2048 ~count:4096 in
          K.stream_map fb ~src:hist ~dst:hist ~words:2048 ~stride:1 ~work:2;
          let sum = K.reduce_xor fb ~base:hist ~words:2048 (Reg acc) in
          B.terminate fb (Return (Some (Reg sum))));
      B.finish b ~entry:"main")

let lout =
  Spec.make ~name:"lout" ~suite:"consumer"
    ~description:
      "Typesetting: call-tree heavy layout computation with many small \
       helpers and redundant metric recomputation — the inlining and \
       GCSE flags carry this program."
    (fun () ->
      let b = B.create () in
      let text =
        B.array b "text" ~words:2048
          ~init:(Pseudo_random { seed = 61; bound = 128 })
      in
      let metrics = B.array b "metrics" ~words:2048 ~init:Zeros in
      K.def_leaf_scale b "glyph_width" ~m:11 ~a:3 ~s:2;
      K.def_leaf_scale b "kern_adjust" ~m:5 ~a:1 ~s:1;
      K.def_helper_mix ~steps:14 b "line_break_cost";
      B.func b "measure" ~nparams:1 (fun fb params ->
          let x = List.nth params 0 in
          let w = B.call fb "glyph_width" [ Reg x ] in
          let k = B.call fb "kern_adjust" [ Reg w ] in
          let r = B.alu fb Add (Reg w) (Reg k) in
          B.terminate fb (Return (Some (Reg r))));
      B.func b "main" ~nparams:0 (fun fb _ ->
          B.counted_loop fb ~from:0 ~limit:(Imm 2048) ~step:1 (fun i ->
              let base, off = K.word_addr fb ~base:text i in
              let ch = B.load fb base off in
              let m = B.call fb "measure" [ Reg ch ] in
              let c = B.call fb "line_break_cost" [ Reg m; Reg ch ] in
              let ob, oo = K.word_addr fb ~base:metrics i in
              B.store fb (Reg c) ob oo);
          let acc = K.reduce_xor fb ~base:metrics ~words:2048 (Imm 0) in
          B.terminate fb (Return (Some (Reg acc))));
      B.finish b ~entry:"main")

let all =
  [
    cjpeg; djpeg; lame; madplay; tiff2bw; tiff2rgba; tiffdither; tiffmedian;
    lout;
  ]
