(** The "network" suite: dijkstra and patricia.

    Both are pointer/table-walk programs: short dependent load chains,
    unpredictable access patterns, frequent branches — the class where the
    data cache configuration dominates and compiler headroom is moderate. *)

open Ir.Types
module B = Ir.Builder
module K = Kernels

let dijkstra =
  Spec.make ~name:"dijkstra" ~suite:"network"
    ~description:
      "Shortest path relaxation: repeated scans selecting a minimum and \
       relaxing neighbours through an adjacency table — load-compare \
       bound with biased branches and a removable bounds check."
    (fun () ->
      let b = B.create () in
      let dist =
        B.array b "dist" ~words:512
          ~init:(Pseudo_random { seed = 67; bound = 100000 })
      in
      let adj =
        B.array b "adj" ~words:1024
          ~init:(Pseudo_random { seed = 71; bound = 512 })
      in
      let weight =
        B.array b "weight" ~words:1024
          ~init:(Pseudo_random { seed = 73; bound = 64 })
      in
      B.func b "main" ~nparams:0 (fun fb _ ->
          B.counted_loop fb ~from:0 ~limit:(Imm 6) ~step:1 (fun _ ->
              B.counted_loop fb ~from:0 ~limit:(Imm 1024) ~step:1 (fun e ->
                  let ab, ao = K.word_addr fb ~base:adj e in
                  let node = B.load fb ab ao in
                  let masked = B.alu fb And (Reg node) (Imm 511) in
                  let db, dodo = K.word_addr fb ~base:dist masked in
                  let d = B.load fb db dodo in
                  let wb, wo = K.word_addr fb ~base:weight e in
                  let w = B.load fb wb wo in
                  let cand = B.alu fb Add (Reg d) (Reg w) in
                  let em = B.alu fb And (Reg e) (Imm 511) in
                  let db2, do2 = K.word_addr fb ~base:dist em in
                  let cur = B.load fb db2 do2 in
                  let better = B.cmp fb Lt (Reg cand) (Reg cur) in
                  B.if_ fb better
                    ~then_:(fun () -> B.store fb (Reg cand) db2 do2)
                    ~else_:(fun () -> ())));
          let acc = K.reduce_xor fb ~base:dist ~words:512 (Imm 0) in
          B.terminate fb (Return (Some (Reg acc))));
      B.finish b ~entry:"main")

let patricia =
  Spec.make ~name:"patricia" ~suite:"network"
    ~description:
      "Patricia-trie route lookups: bit-tested pointer walks through a \
       node table — dependent loads with data-driven branching; trie \
       footprint sized to stress small data caches."
    (fun () ->
      let b = B.create () in
      (* Node table: next pointers packed as indices. *)
      let trie =
        B.array b "trie" ~words:4096
          ~init:(Pseudo_random { seed = 79; bound = 2048 })
      in
      let keys =
        B.array b "keys" ~words:1024
          ~init:(Pseudo_random { seed = 83; bound = 1 lsl 24 })
      in
      B.func b "lookup" ~nparams:1 (fun fb params ->
          let key = List.nth params 0 in
          let node = B.mov fb (Imm 0) in
          B.counted_loop fb ~from:0 ~limit:(Imm 8) ~step:1 (fun d ->
              let bit0 = B.shift fb Lsr (Reg key) (Reg d) in
              let bit = B.alu fb And (Reg bit0) (Imm 1) in
              let two = B.shift fb Lsl (Reg node) (Imm 1) in
              let slot = B.alu fb Add (Reg two) (Reg bit) in
              let masked = B.alu fb And (Reg slot) (Imm 4095) in
              let tb, to_ = K.word_addr fb ~base:trie masked in
              let next = B.load fb tb to_ in
              let nm = B.alu fb And (Reg next) (Imm 2047) in
              B.emit fb (Mov { dst = node; src = Reg nm }));
          B.terminate fb (Return (Some (Reg node))));
      B.func b "main" ~nparams:0 (fun fb _ ->
          let acc = B.mov fb (Imm 0) in
          B.counted_loop fb ~from:0 ~limit:(Imm 1024) ~step:1 (fun i ->
              let kb, ko = K.word_addr fb ~base:keys i in
              let key = B.load fb kb ko in
              let hit = B.call fb "lookup" [ Reg key ] in
              B.emit fb (Alu { dst = acc; op = Add; a = Reg acc; b = Reg hit }));
          B.terminate fb (Return (Some (Reg acc))));
      B.finish b ~entry:"main")

let all = [ dijkstra; patricia ]
