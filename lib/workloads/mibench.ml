(** The full 35-program MiBench-like suite (section 4.1 of the paper).

    Programs are grouped in the original MiBench categories; every
    benchmark named in figure 4's x-axis is present.  [program_of] caches
    built programs — they are immutable, and builders are deterministic. *)

let all : Spec.t array =
  Array.of_list
    (Auto.all @ Consumer.all @ Network.all @ Office.all @ Security.all
   @ Telecomm.all)

let () = assert (Array.length all = 35)

let names = Array.map (fun s -> s.Spec.name) all

let by_name name =
  match Array.find_opt (fun s -> s.Spec.name = name) all with
  | Some s -> s
  | None -> invalid_arg ("Mibench.by_name: unknown benchmark " ^ name)

let cache : (string, Ir.Types.program) Hashtbl.t = Hashtbl.create 64

(* The cache is shared by every domain of the work pool; builders are
   deterministic, so a lost insertion race returns an equal program. *)
let cache_mutex = Mutex.create ()

let program_of (spec : Spec.t) =
  let find () =
    Mutex.lock cache_mutex;
    let p = Hashtbl.find_opt cache spec.Spec.name in
    Mutex.unlock cache_mutex;
    p
  in
  match find () with
  | Some p -> p
  | None ->
    let p = spec.Spec.build () in
    Mutex.lock cache_mutex;
    let p =
      match Hashtbl.find_opt cache spec.Spec.name with
      | Some winner -> winner
      | None ->
        Hashtbl.replace cache spec.Spec.name p;
        p
    in
    Mutex.unlock cache_mutex;
    p
