(** The full 35-program MiBench-like suite (section 4.1 of the paper).

    Programs are grouped in the original MiBench categories; every
    benchmark named in figure 4's x-axis is present.  [program_of] caches
    built programs — they are immutable, and builders are deterministic. *)

let all : Spec.t array =
  Array.of_list
    (Auto.all @ Consumer.all @ Network.all @ Office.all @ Security.all
   @ Telecomm.all)

let () = assert (Array.length all = 35)

let names = Array.map (fun s -> s.Spec.name) all

let by_name name =
  match Array.find_opt (fun s -> s.Spec.name = name) all with
  | Some s -> s
  | None -> invalid_arg ("Mibench.by_name: unknown benchmark " ^ name)

let cache : (string, Ir.Types.program) Hashtbl.t = Hashtbl.create 64

let program_of (spec : Spec.t) =
  match Hashtbl.find_opt cache spec.Spec.name with
  | Some p -> p
  | None ->
    let p = spec.Spec.build () in
    Hashtbl.replace cache spec.Spec.name p;
    p
