(** Workload descriptor: one MiBench-like benchmark.

    [build] constructs the program fresh each time (programs are immutable
    once built, so callers may also cache).  [description] records which
    real MiBench behaviour the synthetic program models — the contract that
    keeps the suite honest. *)

type t = {
  name : string;
  suite : string;
  description : string;
  build : unit -> Ir.Types.program;
}

let make ~name ~suite ~description build = { name; suite; description; build }
