(** Imperative construction DSL for IR programs.

    Workload generators and tests use this instead of writing record
    literals: it allocates fresh registers and labels, tracks the current
    block, lays out the data segment and provides structured control-flow
    helpers that expand to the do-while CFG shape the unrolling and
    unswitching passes recognise.

    {!finish} validates the program, so anything a builder returns is
    well-formed by construction. *)

open Types

type t
(** Program under construction. *)

type fb
(** Function under construction: holds the current (open) block. *)

val create : unit -> t

val array : t -> string -> words:int -> init:data_init -> int
(** Allocate a named array in the data segment; returns its byte base
    address for use as an immediate operand. *)

val begin_func : t -> string -> nparams:int -> fb
(** Open a function whose parameters are registers [0 .. nparams-1]; the
    block ["entry"] is open initially. *)

val fresh : fb -> reg
(** A fresh virtual register. *)

val fresh_label : fb -> string -> label
(** A fresh label built from the given hint. *)

val emit : fb -> inst -> unit
(** Append to the open block.  Raises if no block is open. *)

val terminate : fb -> terminator -> unit
(** Close the open block. *)

val start_block : fb -> label -> unit
(** Open a new block.  Raises if the previous block is still open. *)

val end_func : fb -> unit
(** Register the function.  Raises if a block is still open. *)

val func : t -> string -> nparams:int -> (fb -> reg list -> unit) -> unit
(** Define a whole function: the body receives the builder and the
    parameter registers and must leave every block terminated. *)

(** {2 Convenience emitters} — each returns the destination register. *)

val alu : fb -> alu_op -> operand -> operand -> reg
val cmp : fb -> cmp_op -> operand -> operand -> reg
val mac : fb -> operand -> operand -> operand -> reg
val shift : fb -> shift_op -> operand -> operand -> reg
val mov : fb -> operand -> reg
val load : fb -> operand -> operand -> reg
val store : fb -> operand -> operand -> operand -> unit
val call : fb -> string -> operand list -> reg
val call_void : fb -> string -> operand list -> unit

(** {2 Structured control flow} *)

val if_ : fb -> reg -> then_:(unit -> unit) -> else_:(unit -> unit) -> unit
(** Branch on a non-zero register; the else block is placed first so the
    not-taken edge is the layout fall-through. *)

val counted_loop :
  fb -> from:int -> limit:operand -> step:int -> (reg -> unit) -> unit
(** Do-while counted loop (executes the body at least once); the body
    callback receives the induction register.  This is the canonical
    shape {!Passes.Unroll} recognises. *)

val frame_words : int
(** Stack area reserved per function for spill slots. *)

val finish : t -> entry:string -> program
(** Assemble, lay out memory and validate.  Raises [Invalid_argument] on
    a malformed program. *)
