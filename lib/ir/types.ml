(** Core intermediate representation.

    The IR plays the role of gcc's RTL in the reproduction: workload
    generators build programs in it, every optimisation pass in
    {!module:Passes} is an IR-to-IR transform, and the interpreter executes
    it to produce the execution profiles the simulator consumes.

    Design notes:
    - Virtual registers are unbounded non-negative integers; a later
      register-pressure lowering models the cost of mapping them onto the
      machine's limited register file (spill code), which is how the paper's
      scheduling/spill interaction (section 5.4) arises.
    - Memory is a flat byte-addressed space holding 32-bit words at 4-byte
      alignment.  Workloads allocate named arrays in a data segment; each
      function additionally owns a stack area used by spill slots.
    - [Call] is an ordinary instruction (the inliner splits blocks around
      it); [Tail_call] is a terminator produced by the sibling-call pass.
    - Division by zero yields zero and shifts use the low five bits of the
      amount, so that every program is total and optimisation passes can be
      checked against an execution checksum. *)

type reg = int

type label = string

type operand =
  | Reg of reg
  | Imm of int

type alu_op =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Min
  | Max

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type shift_op = Lsl | Lsr | Asr

type inst =
  | Alu of { dst : reg; op : alu_op; a : operand; b : operand }
  | Cmp of { dst : reg; op : cmp_op; a : operand; b : operand }
      (** [dst] receives 1 when the comparison holds, else 0. *)
  | Mac of { dst : reg; acc : operand; a : operand; b : operand }
      (** Multiply-accumulate: [dst <- acc + a*b]; maps onto the XScale MAC
          unit and drives the [Mac usage] performance counter. *)
  | Shift of { dst : reg; op : shift_op; a : operand; amount : operand }
  | Mov of { dst : reg; src : operand }
  | Load of { dst : reg; base : operand; offset : operand }
      (** Word load from byte address [base + offset]. *)
  | Store of { src : operand; base : operand; offset : operand }
  | Call of { dst : reg option; callee : string; args : operand list }
  | Spill_store of { src : reg; slot : int }
      (** Register save to the function's stack area; inserted by lowering
          (register pressure, caller-save conventions), never by
          workloads. *)
  | Spill_load of { dst : reg; slot : int }

type terminator =
  | Jump of label
  | Branch of { cond : reg; ifso : label; ifnot : label }
      (** Taken when [cond] is non-zero. *)
  | Return of operand option
  | Tail_call of { callee : string; args : operand list }

type block = {
  label : label;
  insts : inst list;
  term : terminator;
  balign : int;  (** Requested start alignment in bytes (0 = none). *)
}

type func = {
  name : string;
  params : reg list;
  blocks : block list;  (** The first block is the entry. *)
  falign : int;  (** Requested function start alignment in bytes. *)
  stack_slots : int;  (** Spill slots allocated by lowering. *)
}

(** Initial contents of one data-segment array. *)
type data_init =
  | Zeros
  | Ramp of { start : int; step : int }
  | Pseudo_random of { seed : int; bound : int }

type data_decl = {
  dname : string;
  base : int;  (** Byte address assigned by the workload builder. *)
  words : int;
  init : data_init;
}

type program = {
  funcs : func list;
  entry_func : string;
  data : data_decl list;
  mem_words : int;  (** Total memory size, covering data and all stacks. *)
  stack_base : int;  (** Byte address of the spill-slot area. *)
}

let word_bytes = 4

let inst_bytes = 4
(** Every encoded instruction occupies four bytes, as on the XScale. *)

let find_func program name =
  List.find_opt (fun f -> f.name = name) program.funcs

let find_block func label =
  List.find_opt (fun b -> b.label = label) func.blocks

let entry_block func =
  match func.blocks with
  | [] -> invalid_arg ("Types.entry_block: empty function " ^ func.name)
  | b :: _ -> b

(** Registers read by an instruction. *)
let inst_uses inst =
  let operand acc = function Reg r -> r :: acc | Imm _ -> acc in
  match inst with
  | Alu { a; b; _ } | Cmp { a; b; _ } -> operand (operand [] a) b
  | Shift { a; amount; _ } -> operand (operand [] a) amount
  | Mac { acc; a; b; _ } -> operand (operand (operand [] acc) a) b
  | Mov { src; _ } -> operand [] src
  | Load { base; offset; _ } -> operand (operand [] base) offset
  | Store { src; base; offset } -> operand (operand (operand [] src) base) offset
  | Call { args; _ } -> List.fold_left operand [] args
  | Spill_store { src; _ } -> [ src ]
  | Spill_load _ -> []

(** Register written by an instruction, if any. *)
let inst_def inst =
  match inst with
  | Alu { dst; _ }
  | Cmp { dst; _ }
  | Mac { dst; _ }
  | Shift { dst; _ }
  | Mov { dst; _ }
  | Load { dst; _ }
  | Spill_load { dst; _ } ->
    Some dst
  | Call { dst; _ } -> dst
  | Store _ | Spill_store _ -> None

let term_uses term =
  match term with
  | Jump _ -> []
  | Branch { cond; _ } -> [ cond ]
  | Return (Some (Reg r)) -> [ r ]
  | Return _ -> []
  | Tail_call { args; _ } ->
    List.filter_map (function Reg r -> Some r | Imm _ -> None) args

let successors term =
  match term with
  | Jump l -> [ l ]
  | Branch { ifso; ifnot; _ } -> [ ifso; ifnot ]
  | Return _ | Tail_call _ -> []

(** Whether an instruction has no side effect and a deterministic value,
    i.e. may be removed when dead or shared when repeated. *)
let is_pure inst =
  match inst with
  | Alu _ | Cmp _ | Mac _ | Shift _ | Mov _ -> true
  | Load _ | Store _ | Call _ | Spill_store _ | Spill_load _ -> false

let func_size func =
  List.fold_left (fun acc b -> acc + List.length b.insts + 1) 0 func.blocks

let program_size program =
  List.fold_left (fun acc f -> acc + func_size f) 0 program.funcs

let map_func program name transform =
  {
    program with
    funcs =
      List.map (fun f -> if f.name = name then transform f else f)
        program.funcs;
  }

let map_funcs program transform =
  { program with funcs = List.map transform program.funcs }

(** Highest register mentioned in the function, or -1 if none. *)
let max_reg func =
  let biggest acc r = max acc r in
  List.fold_left
    (fun acc block ->
      let acc =
        List.fold_left
          (fun acc inst ->
            let acc = List.fold_left biggest acc (inst_uses inst) in
            match inst_def inst with Some d -> biggest acc d | None -> acc)
          acc block.insts
      in
      List.fold_left biggest acc (term_uses block.term))
    (List.fold_left biggest (-1) func.params)
    func.blocks
