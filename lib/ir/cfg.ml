(** Control-flow graph, dominator tree and natural-loop analysis for one
    function.

    The CFG is an immutable snapshot: passes build it, compute what they
    need, transform the block list functionally and rebuild if necessary.
    Dominators use the Cooper–Harvey–Kennedy iterative algorithm over
    reverse postorder. *)

open Types

type t = {
  func : func;
  blocks : block array;
  index_of : (label, int) Hashtbl.t;
  succ : int list array;
  pred : int list array;
  rpo : int array;  (** Reverse postorder over reachable blocks. *)
  rpo_pos : int array;  (** Position in [rpo]; -1 when unreachable. *)
  idom : int array;  (** Immediate dominator; entry maps to itself. *)
}

let build (func : Types.func) =
  let blocks = Array.of_list func.blocks in
  let n = Array.length blocks in
  let index_of = Hashtbl.create (2 * n) in
  Array.iteri (fun i b -> Hashtbl.replace index_of b.label i) blocks;
  let lookup label =
    match Hashtbl.find_opt index_of label with
    | Some i -> i
    | None -> invalid_arg ("Cfg.build: unknown label " ^ label)
  in
  let succ = Array.make n [] in
  let pred = Array.make n [] in
  Array.iteri
    (fun i b ->
      let targets = List.map lookup (successors b.term) in
      succ.(i) <- targets;
      List.iter (fun j -> pred.(j) <- i :: pred.(j)) targets)
    blocks;
  (* Depth-first postorder from the entry block (index 0). *)
  let visited = Array.make n false in
  let postorder = ref [] in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs succ.(i);
      postorder := i :: !postorder
    end
  in
  if n > 0 then dfs 0;
  let rpo = Array.of_list !postorder in
  let rpo_pos = Array.make n (-1) in
  Array.iteri (fun pos i -> rpo_pos.(i) <- pos) rpo;
  (* Cooper–Harvey–Kennedy dominators. *)
  let idom = Array.make n (-1) in
  if n > 0 then begin
    idom.(0) <- 0;
    let intersect a b =
      let a = ref a and b = ref b in
      while !a <> !b do
        while rpo_pos.(!a) > rpo_pos.(!b) do
          a := idom.(!a)
        done;
        while rpo_pos.(!b) > rpo_pos.(!a) do
          b := idom.(!b)
        done
      done;
      !a
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun i ->
          if i <> 0 then begin
            let processed =
              List.filter (fun p -> idom.(p) >= 0) pred.(i)
            in
            match processed with
            | [] -> ()
            | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(i) <> new_idom then begin
                idom.(i) <- new_idom;
                changed := true
              end
          end)
        rpo
    done
  end;
  { func; blocks; index_of; succ; pred; rpo; rpo_pos; idom }

let n_blocks t = Array.length t.blocks

let index t label =
  match Hashtbl.find_opt t.index_of label with
  | Some i -> i
  | None -> invalid_arg ("Cfg.index: unknown label " ^ label)

let label t i = t.blocks.(i).label

let reachable t i = t.rpo_pos.(i) >= 0

(** [dominates t a b]: every path from entry to [b] passes through [a].
    Unreachable blocks dominate nothing and are dominated by nothing. *)
let dominates t a b =
  if not (reachable t a && reachable t b) then false
  else begin
    let rec walk x = if x = a then true else if x = 0 then a = 0 else walk t.idom.(x) in
    walk b
  end

type loop = {
  header : int;
  body : int list;  (** All member blocks, header included. *)
  latches : int list;  (** Blocks with a back edge to the header. *)
}

(** Natural loops from back edges (edges [l -> h] where [h] dominates [l]).
    Back edges sharing a header are merged into one loop, as usual. *)
let natural_loops t =
  let n = n_blocks t in
  let by_header = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    if reachable t i then
      List.iter
        (fun s ->
          if dominates t s i then begin
            let latches =
              Option.value (Hashtbl.find_opt by_header s) ~default:[]
            in
            Hashtbl.replace by_header s (i :: latches)
          end)
        t.succ.(i)
  done;
  Hashtbl.fold
    (fun header latches acc ->
      (* Body = header plus everything that reaches a latch without going
         through the header (standard backward reachability). *)
      let in_body = Array.make n false in
      in_body.(header) <- true;
      let rec pull i =
        if not in_body.(i) then begin
          in_body.(i) <- true;
          List.iter pull t.pred.(i)
        end
      in
      List.iter pull latches;
      let body = ref [] in
      for i = n - 1 downto 0 do
        if in_body.(i) then body := i :: !body
      done;
      { header; body = !body; latches } :: acc)
    by_header []
  |> List.sort (fun a b -> compare a.header b.header)

(** Blocks not reachable from the entry, e.g. after branch folding. *)
let unreachable_blocks t =
  let acc = ref [] in
  for i = n_blocks t - 1 downto 0 do
    if not (reachable t i) then acc := t.blocks.(i).label :: !acc
  done;
  !acc

(** Drop unreachable blocks from a function.  Safe after any pass that
    rewrites terminators. *)
let prune_unreachable func =
  let t = build func in
  match unreachable_blocks t with
  | [] -> func
  | dead ->
    let dead_set = List.fold_left (fun s l -> l :: s) [] dead in
    {
      func with
      blocks =
        List.filter (fun b -> not (List.mem b.label dead_set)) func.blocks;
    }
