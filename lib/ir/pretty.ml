(** Human-readable IR dumps, used by the CLI's [dump] command, error
    messages and golden tests. *)

open Types

let operand = function
  | Reg r -> Printf.sprintf "r%d" r
  | Imm i -> Printf.sprintf "#%d" i

let alu_op = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Min -> "min"
  | Max -> "max"

let cmp_op = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let shift_op = function Lsl -> "lsl" | Lsr -> "lsr" | Asr -> "asr"

let inst i =
  match i with
  | Alu { dst; op; a; b } ->
    Printf.sprintf "r%d = %s %s, %s" dst (alu_op op) (operand a) (operand b)
  | Cmp { dst; op; a; b } ->
    Printf.sprintf "r%d = cmp.%s %s, %s" dst (cmp_op op) (operand a)
      (operand b)
  | Mac { dst; acc; a; b } ->
    Printf.sprintf "r%d = mac %s, %s, %s" dst (operand acc) (operand a)
      (operand b)
  | Shift { dst; op; a; amount } ->
    Printf.sprintf "r%d = %s %s, %s" dst (shift_op op) (operand a)
      (operand amount)
  | Mov { dst; src } -> Printf.sprintf "r%d = mov %s" dst (operand src)
  | Load { dst; base; offset } ->
    Printf.sprintf "r%d = load [%s + %s]" dst (operand base) (operand offset)
  | Store { src; base; offset } ->
    Printf.sprintf "store %s -> [%s + %s]" (operand src) (operand base)
      (operand offset)
  | Call { dst; callee; args } ->
    let args = String.concat ", " (List.map operand args) in
    (match dst with
    | Some d -> Printf.sprintf "r%d = call %s(%s)" d callee args
    | None -> Printf.sprintf "call %s(%s)" callee args)
  | Spill_store { src; slot } -> Printf.sprintf "spill r%d -> slot%d" src slot
  | Spill_load { dst; slot } -> Printf.sprintf "r%d = reload slot%d" dst slot

let terminator t =
  match t with
  | Jump l -> Printf.sprintf "jump %s" l
  | Branch { cond; ifso; ifnot } ->
    Printf.sprintf "branch r%d ? %s : %s" cond ifso ifnot
  | Return None -> "return"
  | Return (Some v) -> Printf.sprintf "return %s" (operand v)
  | Tail_call { callee; args } ->
    Printf.sprintf "tailcall %s(%s)" callee
      (String.concat ", " (List.map operand args))

let block b =
  let buf = Buffer.create 256 in
  if b.balign > 0 then
    Buffer.add_string buf (Printf.sprintf "  .align %d\n" b.balign);
  Buffer.add_string buf (Printf.sprintf "%s:\n" b.label);
  List.iter (fun i -> Buffer.add_string buf ("    " ^ inst i ^ "\n")) b.insts;
  Buffer.add_string buf ("    " ^ terminator b.term ^ "\n");
  Buffer.contents buf

let func f =
  let buf = Buffer.create 1024 in
  let params = String.concat ", " (List.map (Printf.sprintf "r%d") f.params) in
  let attrs =
    (if f.falign > 0 then [ Printf.sprintf "align=%d" f.falign ] else [])
    @
    if f.stack_slots > 0 then [ Printf.sprintf "slots=%d" f.stack_slots ]
    else []
  in
  let attrs = match attrs with [] -> "" | l -> " " ^ String.concat " " l in
  Buffer.add_string buf (Printf.sprintf "func %s(%s)%s:\n" f.name params attrs);
  List.iter (fun b -> Buffer.add_string buf (block b)) f.blocks;
  Buffer.contents buf

let data_init = function
  | Zeros -> "zeros"
  | Ramp { start; step } -> Printf.sprintf "ramp(%d,%d)" start step
  | Pseudo_random { seed; bound } -> Printf.sprintf "prand(%d,%d)" seed bound

let program p =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "entry %s\n" p.entry_func);
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "data %s @%d words=%d init=%s\n" d.dname d.base
           d.words (data_init d.init)))
    p.data;
  List.iter (fun f -> Buffer.add_string buf (func f ^ "\n")) p.funcs;
  Buffer.contents buf
