(** Structural well-formedness checks.

    Run by tests after every pass and by the workload builders: a pass that
    produces a dangling label, duplicate block, or call to a missing function
    is caught here rather than as a confusing interpreter failure. *)

open Types

type error = { where : string; what : string }

let errf where fmt = Printf.ksprintf (fun what -> { where; what }) fmt

let check_func program func errors =
  let where = "func " ^ func.name in
  if func.blocks = [] then errors := errf where "has no blocks" :: !errors;
  let labels = Hashtbl.create 64 in
  List.iter
    (fun b ->
      if Hashtbl.mem labels b.label then
        errors := errf where "duplicate label %s" b.label :: !errors
      else Hashtbl.add labels b.label ())
    func.blocks;
  let check_target label =
    if not (Hashtbl.mem labels label) then
      errors := errf where "jump to unknown label %s" label :: !errors
  in
  let check_callee callee =
    if find_func program callee = None then
      errors := errf where "call to unknown function %s" callee :: !errors
  in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i with
          | Call { callee; _ } -> check_callee callee
          | Spill_store { slot; _ } | Spill_load { slot; _ } ->
            if slot < 0 || slot >= func.stack_slots then
              errors :=
                errf where "block %s: spill slot %d out of range [0,%d)"
                  b.label slot func.stack_slots
                :: !errors
          | Alu _ | Cmp _ | Mac _ | Shift _ | Mov _ | Load _ | Store _ -> ())
        b.insts;
      List.iter check_target (successors b.term);
      match b.term with
      | Tail_call { callee; _ } -> check_callee callee
      | Jump _ | Branch _ | Return _ -> ())
    func.blocks;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p then
        errors := errf where "duplicate parameter r%d" p :: !errors
      else Hashtbl.add seen p ())
    func.params

let check_data program errors =
  let decls =
    List.sort (fun a b -> compare a.base b.base) program.data
  in
  let rec overlaps = function
    | a :: (b :: _ as rest) ->
      if a.base + (a.words * word_bytes) > b.base then
        errors :=
          errf "data" "%s overlaps %s" a.dname b.dname :: !errors;
      overlaps rest
    | _ -> ()
  in
  overlaps decls;
  List.iter
    (fun d ->
      if d.base mod word_bytes <> 0 then
        errors := errf "data" "%s base not word aligned" d.dname :: !errors;
      if d.base + (d.words * word_bytes) > program.mem_words * word_bytes then
        errors := errf "data" "%s exceeds memory" d.dname :: !errors)
    program.data

let check program =
  let errors = ref [] in
  (match find_func program program.entry_func with
  | None ->
    errors :=
      errf "program" "entry function %s not defined" program.entry_func
      :: !errors
  | Some f ->
    if f.params <> [] then
      errors := errf "program" "entry function takes parameters" :: !errors);
  let names = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem names f.name then
        errors := errf "program" "duplicate function %s" f.name :: !errors
      else Hashtbl.add names f.name ())
    program.funcs;
  List.iter (fun f -> check_func program f errors) program.funcs;
  check_data program errors;
  List.rev !errors

let check_exn program =
  match check program with
  | [] -> ()
  | errs ->
    let msg =
      String.concat "; "
        (List.map (fun e -> e.where ^ ": " ^ e.what) errs)
    in
    invalid_arg ("Validate.check_exn: " ^ msg)
