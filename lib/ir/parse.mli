(** Parser for the textual IR format emitted by {!Pretty}.

    [program (Pretty.program p) = p] for every valid program — the
    round-trip property enforced by the test suite — making the textual
    form a real interchange format: programs can be dumped from the CLI
    ([portopt dump]), edited by hand and reloaded ([portopt exec]). *)

exception Error of int * string
(** 1-based line number and message. *)

val program : string -> Types.program
(** Parse and validate.  Raises {!Error} on malformed input and
    [Invalid_argument] when the parsed program fails {!Validate}. *)
