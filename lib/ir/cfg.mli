(** Control-flow graph, dominator tree and natural-loop analysis for one
    function.

    The CFG is an immutable snapshot: passes build it, compute what they
    need, transform the block list functionally and rebuild if needed.
    Dominators use the Cooper–Harvey–Kennedy iterative algorithm over
    reverse postorder. *)

type t = {
  func : Types.func;
  blocks : Types.block array;  (** In [func.blocks] order. *)
  index_of : (Types.label, int) Hashtbl.t;
  succ : int list array;
  pred : int list array;
  rpo : int array;  (** Reverse postorder over reachable blocks. *)
  rpo_pos : int array;  (** Position in [rpo]; -1 when unreachable. *)
  idom : int array;  (** Immediate dominator; the entry maps to itself. *)
}

val build : Types.func -> t

val n_blocks : t -> int

val index : t -> Types.label -> int
(** Raises [Invalid_argument] on an unknown label. *)

val label : t -> int -> Types.label

val reachable : t -> int -> bool

val dominates : t -> int -> int -> bool
(** [dominates t a b]: every path from the entry to [b] passes through
    [a].  Unreachable blocks dominate nothing. *)

type loop = {
  header : int;
  body : int list;  (** All member blocks, header included. *)
  latches : int list;  (** Blocks with a back edge to the header. *)
}

val natural_loops : t -> loop list
(** Natural loops from back edges; back edges sharing a header are merged
    into one loop.  Sorted by header index. *)

val unreachable_blocks : t -> Types.label list

val prune_unreachable : Types.func -> Types.func
(** Drop blocks not reachable from the entry — safe after any pass that
    rewrites terminators. *)
