(** Reference interpreter over a placed image.

    One run produces both the functional result (the checksum every
    optimisation pass must preserve) and the execution profile the timing
    model consumes.  Semantics are 32-bit two's-complement with total
    division (x/0 = 0) and modulo-32 shift amounts, so all programs
    terminate deterministically and passes can be validated by checksum
    equality.

    Performance notes: this loop executes hundreds of millions of
    instructions while generating the training data, so it avoids per-step
    allocation; the only allocations are call frames and the growable trace
    buffers. *)

open Prelude
open Types

exception Fuel_exhausted
exception Runtime_error of string

type frame = {
  fr_pf : Layout.placed_func;
  mutable fr_blk : int;
  mutable fr_idx : int;
  fr_regs : int array;
  fr_prod_kind : int array;  (** -1 none, 0 fast, 1 load, 2 long-latency. *)
  fr_prod_seq : int array;
  mutable fr_pending_dst : int;  (** Callee return target register, or -1. *)
}

let kind_fast = 0
let kind_load = 1
let kind_long = 2

let norm v =
  let v = v land 0xFFFFFFFF in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let eval_alu op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Min -> min a b
  | Max -> max a b

let eval_cmp op a b =
  let holds =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if holds then 1 else 0

let eval_shift op a amount =
  let k = amount land 31 in
  match op with
  | Lsl -> a lsl k
  | Lsr -> (a land 0xFFFFFFFF) lsr k
  | Asr -> a asr k

let init_memory program =
  let mem = Array.make program.mem_words 0 in
  List.iter
    (fun d ->
      let w0 = d.base / word_bytes in
      match d.init with
      | Zeros -> ()
      | Ramp { start; step } ->
        for i = 0 to d.words - 1 do
          mem.(w0 + i) <- norm (start + (i * step))
        done
      | Pseudo_random { seed; bound } ->
        let rng = Rng.create (seed lxor (d.base * 2654435761)) in
        for i = 0 to d.words - 1 do
          mem.(w0 + i) <- Rng.int rng (max 1 bound)
        done)
    program.data;
  mem

let make_frame (pf : Layout.placed_func) =
  let n = pf.Layout.pf_max_reg + 1 in
  {
    fr_pf = pf;
    fr_blk = 0;
    fr_idx = 0;
    fr_regs = Array.make (max 1 n) 0;
    fr_prod_kind = Array.make (max 1 n) (-1);
    fr_prod_seq = Array.make (max 1 n) (-1);
    fr_pending_dst = -1;
  }

let max_call_depth = 512

(* Full run returning the raw trace collector alongside the result, for
   callers (exact-simulation validation) that need the address streams
   the histograms are built from. *)
let run_raw ?(fuel = 50_000_000) ?(trace = true) (layout : Layout.t) =
  let program = layout.Layout.program in
  let raw =
    Profile.create_raw ~n_branch_sites:layout.Layout.n_branch_sites ~trace
  in
  let mem = init_memory program in
  let mem_words = program.mem_words in
  let seq = ref 0 in
  let last_iblk = ref min_int in
  let last_btb = ref min_int in
  let stack = ref [] in
  let depth = ref 0 in
  let entry_pf = Layout.func_of_name layout program.entry_func in
  let frame = ref (make_frame entry_pf) in
  let result = ref None in
  let fetch addr =
    if trace then begin
      let blk = addr asr 3 in
      if blk <> !last_iblk then begin
        last_iblk := blk;
        Ibuf.push raw.Profile.r_iblocks8 blk
      end
    end
  in
  let count_exec addr =
    raw.Profile.r_dyn <- raw.Profile.r_dyn + 1;
    if raw.Profile.r_dyn > fuel then raise Fuel_exhausted;
    fetch addr;
    incr seq
  in
  (* Register-read bookkeeping: gap histograms for the stall model. *)
  let read_reg fr r =
    raw.Profile.r_reg_reads <- raw.Profile.r_reg_reads + 1;
    let k = fr.fr_prod_kind.(r) in
    if k >= 0 then begin
      let gap = !seq - fr.fr_prod_seq.(r) - 1 in
      if gap = 0 then raw.Profile.r_adjacent <- raw.Profile.r_adjacent + 1;
      if k = kind_load then begin
        let g = if gap > 7 then 7 else gap in
        raw.Profile.r_gap_load.(g) <- raw.Profile.r_gap_load.(g) + 1
      end
      else if k = kind_long then begin
        let g = if gap > 7 then 7 else gap in
        raw.Profile.r_gap_long.(g) <- raw.Profile.r_gap_long.(g) + 1
      end
    end;
    fr.fr_regs.(r)
  in
  let write_reg fr r v kind =
    raw.Profile.r_reg_writes <- raw.Profile.r_reg_writes + 1;
    fr.fr_regs.(r) <- v;
    fr.fr_prod_kind.(r) <- kind;
    fr.fr_prod_seq.(r) <- !seq
  in
  let ev fr = function Reg r -> read_reg fr r | Imm i -> i in
  let mem_index addr =
    let idx = addr asr 2 in
    if idx < 0 || idx >= mem_words then
      raise
        (Runtime_error (Printf.sprintf "memory access out of bounds: %d" addr));
    idx
  in
  let mem_read addr =
    if trace then Ibuf.push raw.Profile.r_daddrs addr;
    mem.(mem_index addr)
  in
  let mem_write addr v =
    if trace then Ibuf.push raw.Profile.r_daddrs addr;
    mem.(mem_index addr) <- v
  in
  let goto fr label =
    fr.fr_blk <- Hashtbl.find fr.fr_pf.Layout.pf_block_of_label label;
    fr.fr_idx <- 0
  in
  let enter_function callee args =
    let pf = Layout.func_of_name layout callee in
    let nf = make_frame pf in
    List.iteri
      (fun i p -> if i < List.length args then nf.fr_regs.(p) <- List.nth args i)
      pf.Layout.pf_func.params;
    nf
  in
  (* Main dispatch loop. *)
  while !result = None do
    let fr = !frame in
    let pb = fr.fr_pf.Layout.pf_blocks.(fr.fr_blk) in
    if fr.fr_idx < Array.length pb.Layout.p_insts then begin
      let inst = pb.Layout.p_insts.(fr.fr_idx) in
      let addr = pb.Layout.p_addrs.(fr.fr_idx) in
      fr.fr_idx <- fr.fr_idx + 1;
      count_exec addr;
      match inst with
      | Alu { dst; op; a; b } ->
        let va = ev fr a and vb = ev fr b in
        let kind =
          match op with Mul | Div | Rem -> kind_long | _ -> kind_fast
        in
        raw.Profile.r_alu <- raw.Profile.r_alu + 1;
        write_reg fr dst (norm (eval_alu op va vb)) kind
      | Cmp { dst; op; a; b } ->
        let va = ev fr a and vb = ev fr b in
        raw.Profile.r_cmp <- raw.Profile.r_cmp + 1;
        write_reg fr dst (eval_cmp op va vb) kind_fast
      | Mac { dst; acc; a; b } ->
        let vacc = ev fr acc and va = ev fr a and vb = ev fr b in
        raw.Profile.r_mac <- raw.Profile.r_mac + 1;
        write_reg fr dst (norm (vacc + (va * vb))) kind_long
      | Shift { dst; op; a; amount } ->
        let va = ev fr a and vk = ev fr amount in
        raw.Profile.r_shift <- raw.Profile.r_shift + 1;
        write_reg fr dst (norm (eval_shift op va vk)) kind_fast
      | Mov { dst; src } ->
        let v = ev fr src in
        raw.Profile.r_mov <- raw.Profile.r_mov + 1;
        write_reg fr dst v kind_fast
      | Load { dst; base; offset } ->
        let a = ev fr base + ev fr offset in
        raw.Profile.r_loads <- raw.Profile.r_loads + 1;
        write_reg fr dst (mem_read a) kind_load
      | Store { src; base; offset } ->
        let v = ev fr src in
        let a = ev fr base + ev fr offset in
        raw.Profile.r_stores <- raw.Profile.r_stores + 1;
        mem_write a v
      | Spill_store { src; slot } ->
        let v = read_reg fr src in
        raw.Profile.r_stores <- raw.Profile.r_stores + 1;
        raw.Profile.r_spill_stores <- raw.Profile.r_spill_stores + 1;
        mem_write (fr.fr_pf.Layout.pf_stack_base + (slot * word_bytes)) v
      | Spill_load { dst; slot } ->
        raw.Profile.r_loads <- raw.Profile.r_loads + 1;
        raw.Profile.r_spill_loads <- raw.Profile.r_spill_loads + 1;
        let v = mem_read (fr.fr_pf.Layout.pf_stack_base + (slot * word_bytes)) in
        write_reg fr dst v kind_load
      | Call { dst; callee; args } ->
        raw.Profile.r_calls <- raw.Profile.r_calls + 1;
        let vargs = List.map (ev fr) args in
        fr.fr_pending_dst <- (match dst with Some d -> d | None -> -1);
        incr depth;
        if !depth > max_call_depth then
          raise (Runtime_error "call stack overflow");
        stack := fr :: !stack;
        frame := enter_function callee vargs
    end
    else begin
      (* Terminator. *)
      match pb.Layout.p_term with
      | Jump target ->
        if not pb.Layout.p_term_elided then begin
          count_exec pb.Layout.p_term_addr;
          raw.Profile.r_jumps <- raw.Profile.r_jumps + 1
        end;
        goto fr target
      | Branch { cond; ifso; ifnot } ->
        count_exec pb.Layout.p_term_addr;
        raw.Profile.r_branches <- raw.Profile.r_branches + 1;
        let taken = read_reg fr cond <> 0 in
        let site = pb.Layout.p_branch_site in
        raw.Profile.r_site_execs.(site) <-
          raw.Profile.r_site_execs.(site) + 1;
        if trace && site <> !last_btb then begin
          last_btb := site;
          Ibuf.push raw.Profile.r_btb site
        end;
        if taken then begin
          raw.Profile.r_taken <- raw.Profile.r_taken + 1;
          raw.Profile.r_site_takens.(site) <-
            raw.Profile.r_site_takens.(site) + 1;
          goto fr ifso
        end
        else begin
          if pb.Layout.p_extra_jump_addr >= 0 then begin
            count_exec pb.Layout.p_extra_jump_addr;
            raw.Profile.r_jumps <- raw.Profile.r_jumps + 1
          end;
          goto fr ifnot
        end
      | Return v ->
        count_exec pb.Layout.p_term_addr;
        raw.Profile.r_rets <- raw.Profile.r_rets + 1;
        let value = match v with Some o -> ev fr o | None -> 0 in
        (match !stack with
        | [] -> result := Some value
        | caller :: rest ->
          stack := rest;
          decr depth;
          if caller.fr_pending_dst >= 0 then
            write_reg caller caller.fr_pending_dst value kind_fast;
          frame := caller)
      | Tail_call { callee; args } ->
        count_exec pb.Layout.p_term_addr;
        raw.Profile.r_tail_calls <- raw.Profile.r_tail_calls + 1;
        let vargs = List.map (ev fr) args in
        (* The caller's return continuation is inherited: the new frame
           returns straight to whoever called us. *)
        frame := enter_function callee vargs
    end
  done;
  let checksum = Option.get !result in
  (checksum, raw)

let run ?fuel ?trace (layout : Layout.t) =
  let checksum, raw = run_raw ?fuel ?trace layout in
  (checksum, Profile.finalise raw ~code_bytes:layout.Layout.code_bytes ~checksum)

(** Convenience: place and run in one step. *)
let run_program ?fuel ?trace program = run ?fuel ?trace (Layout.place program)

(** Raw address streams of a run: data byte addresses in access order and
    the collapsed 8-byte fetch-block ids — the inputs of the reuse
    analysis, exposed for exact-simulation validation. *)
let run_traces ?fuel program =
  let layout = Layout.place program in
  let checksum, raw = run_raw ?fuel ~trace:true layout in
  ( checksum,
    Prelude.Ibuf.to_array raw.Profile.r_daddrs,
    Prelude.Ibuf.to_array raw.Profile.r_iblocks8 )
