(** Execution profiles: everything the timing model needs to price a binary
    on any microarchitecture, gathered from a single interpreted run.

    This is the "trace once, model many" pivot of the reproduction: the
    interpreter runs each (program, optimisation-setting) binary once and
    produces this summary; {!module:Sim} then evaluates it against any of
    the 288,000 microarchitecture configurations in microseconds. *)

open Prelude

type t = {
  dyn_insts : int;  (** All executed instructions, terminators included. *)
  alu : int;
  mac : int;
  shift : int;
  cmp : int;
  mov : int;
  loads : int;  (** Includes spill reloads. *)
  stores : int;  (** Includes spill stores. *)
  spill_loads : int;
  spill_stores : int;
  calls : int;
  tail_calls : int;
  rets : int;
  branches : int;  (** Executed conditional branches. *)
  taken_branches : int;
  jumps : int;  (** Executed unconditional jumps (after fall-through elision). *)
  reg_reads : int;
  reg_writes : int;
  branch_sites : (int * int) array;
      (** Per static branch site: (executions, taken count). *)
  d_hists : (int * Reuse.histogram) array;
      (** Data-reuse histogram per cache block size in bytes. *)
  i_hists : (int * Reuse.histogram) array;
      (** Instruction-fetch reuse histogram per block size. *)
  btb_hist : Reuse.histogram;
      (** Reuse histogram over branch sites, driving the BTB model. *)
  gap_load : int array;
      (** [gap_load.(g)] = uses of a load result [g] instructions after the
          load, [g] capped at 7.  Drives the load-use stall model. *)
  gap_long : int array;
      (** Same for multi-cycle producers (mul, mac, div, rem). *)
  adjacent_dep_pairs : int;
      (** Instructions reading a register written by the immediately
          preceding instruction; limits dual-issue pairing. *)
  code_bytes : int;
  checksum : int;  (** Return value of the entry function. *)
}

let block_sizes = [| 8; 16; 32; 64 |]
(** The cache block sizes of table 2; histograms are precomputed for each. *)

(** Mutable trace collector filled by the interpreter. *)
type raw = {
  mutable r_dyn : int;
  mutable r_alu : int;
  mutable r_mac : int;
  mutable r_shift : int;
  mutable r_cmp : int;
  mutable r_mov : int;
  mutable r_loads : int;
  mutable r_stores : int;
  mutable r_spill_loads : int;
  mutable r_spill_stores : int;
  mutable r_calls : int;
  mutable r_tail_calls : int;
  mutable r_rets : int;
  mutable r_branches : int;
  mutable r_taken : int;
  mutable r_jumps : int;
  mutable r_reg_reads : int;
  mutable r_reg_writes : int;
  r_site_exec : Ibuf.t;  (** Unused when sites are counted in arrays below. *)
  mutable r_site_execs : int array;
  mutable r_site_takens : int array;
  r_daddrs : Ibuf.t;  (** Byte addresses of loads/stores in order. *)
  r_iblocks8 : Ibuf.t;  (** Collapsed 8-byte fetch block ids. *)
  r_btb : Ibuf.t;  (** Collapsed branch-site ids. *)
  r_gap_load : int array;
  r_gap_long : int array;
  mutable r_adjacent : int;
  trace : bool;
}

let create_raw ~n_branch_sites ~trace =
  {
    r_dyn = 0;
    r_alu = 0;
    r_mac = 0;
    r_shift = 0;
    r_cmp = 0;
    r_mov = 0;
    r_loads = 0;
    r_stores = 0;
    r_spill_loads = 0;
    r_spill_stores = 0;
    r_calls = 0;
    r_tail_calls = 0;
    r_rets = 0;
    r_branches = 0;
    r_taken = 0;
    r_jumps = 0;
    r_reg_reads = 0;
    r_reg_writes = 0;
    r_site_exec = Ibuf.create ~capacity:1 ();
    r_site_execs = Array.make (max 1 n_branch_sites) 0;
    r_site_takens = Array.make (max 1 n_branch_sites) 0;
    r_daddrs = Ibuf.create ~capacity:(if trace then 8192 else 1) ();
    r_iblocks8 = Ibuf.create ~capacity:(if trace then 8192 else 1) ();
    r_btb = Ibuf.create ~capacity:(if trace then 4096 else 1) ();
    r_gap_load = Array.make 8 0;
    r_gap_long = Array.make 8 0;
    r_adjacent = 0;
    trace;
  }

(* Collapse consecutive duplicates of [ids]: repeats have stack distance 0
   and always hit, so dropping them changes no miss count while shrinking
   the Fenwick workload. *)
let collapse ids =
  let n = Array.length ids in
  if n = 0 then ids
  else begin
    let out = Array.make n 0 in
    let k = ref 0 in
    out.(0) <- ids.(0);
    k := 1;
    for i = 1 to n - 1 do
      if ids.(i) <> ids.(i - 1) then begin
        out.(!k) <- ids.(i);
        incr k
      end
    done;
    Array.sub out 0 !k
  end

let shift_of_bytes b =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go b 0

let finalise raw ~code_bytes ~checksum =
  let daddrs = Ibuf.to_array raw.r_daddrs in
  let d_hists =
    Array.map
      (fun bs ->
        let s = shift_of_bytes bs in
        let blocks = collapse (Array.map (fun a -> a asr s) daddrs) in
        (bs, Reuse.histogram_of_blocks blocks))
      block_sizes
  in
  let iblocks8 = Ibuf.to_array raw.r_iblocks8 in
  let i_hists =
    Array.map
      (fun bs ->
        let extra_shift = shift_of_bytes bs - 3 in
        let blocks =
          if extra_shift = 0 then iblocks8
          else collapse (Array.map (fun b -> b asr extra_shift) iblocks8)
        in
        (bs, Reuse.histogram_of_blocks blocks))
      block_sizes
  in
  let btb_hist = Reuse.histogram_of_blocks (Ibuf.to_array raw.r_btb) in
  {
    dyn_insts = raw.r_dyn;
    alu = raw.r_alu;
    mac = raw.r_mac;
    shift = raw.r_shift;
    cmp = raw.r_cmp;
    mov = raw.r_mov;
    loads = raw.r_loads;
    stores = raw.r_stores;
    spill_loads = raw.r_spill_loads;
    spill_stores = raw.r_spill_stores;
    calls = raw.r_calls;
    tail_calls = raw.r_tail_calls;
    rets = raw.r_rets;
    branches = raw.r_branches;
    taken_branches = raw.r_taken;
    jumps = raw.r_jumps;
    reg_reads = raw.r_reg_reads;
    reg_writes = raw.r_reg_writes;
    branch_sites =
      Array.init (Array.length raw.r_site_execs) (fun i ->
          (raw.r_site_execs.(i), raw.r_site_takens.(i)));
    d_hists;
    i_hists;
    btb_hist;
    gap_load = Array.copy raw.r_gap_load;
    gap_long = Array.copy raw.r_gap_long;
    adjacent_dep_pairs = raw.r_adjacent;
    code_bytes;
    checksum;
  }

let d_hist t ~block_bytes =
  match Array.find_opt (fun (bs, _) -> bs = block_bytes) t.d_hists with
  | Some (_, h) -> h
  | None -> invalid_arg "Profile.d_hist: unsupported block size"

let i_hist t ~block_bytes =
  match Array.find_opt (fun (bs, _) -> bs = block_bytes) t.i_hists with
  | Some (_, h) -> h
  | None -> invalid_arg "Profile.i_hist: unsupported block size"

let mem_accesses t = t.loads + t.stores
