(** Parser for the textual IR format emitted by {!Pretty}.

    [Parse.program (Pretty.program p)] reconstructs [p] exactly (the
    round-trip property is enforced by the test suite), which makes the
    textual form a real interchange format: programs can be dumped from
    the CLI, edited by hand and reloaded.

    The grammar is line-oriented:
    {v
      entry <name>
      data <name> @<base> words=<n> init=zeros|ramp(a,b)|prand(a,b)
      func <name>(r0, r1) [align=<n>] [slots=<n>]:
        [.align <n>]
      <label>:
          <instruction>
          <terminator>
    v} *)

open Types

exception Error of int * string
(** Line number (1-based) and message. *)

let fail line fmt = Printf.ksprintf (fun m -> raise (Error (line, m))) fmt

(* ---- Lexical helpers -------------------------------------------------- *)

let strip s = String.trim s

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let after prefix s =
  String.sub s (String.length prefix) (String.length s - String.length prefix)

let split_on_string sep s =
  (* Split on a multi-character separator. *)
  let seplen = String.length sep in
  let rec go start acc =
    let rec find i =
      if i + seplen > String.length s then None
      else if String.sub s i seplen = sep then Some i
      else find (i + 1)
    in
    match find start with
    | Some i -> go (i + seplen) (String.sub s start (i - start) :: acc)
    | None -> List.rev (String.sub s start (String.length s - start) :: acc)
  in
  go 0 []

let int_of line s =
  match int_of_string_opt (strip s) with
  | Some v -> v
  | None -> fail line "expected an integer, got %S" s

(* Operand: rN or #imm. *)
let operand line s =
  let s = strip s in
  if starts_with "r" s then Reg (int_of line (after "r" s))
  else if starts_with "#" s then Imm (int_of line (after "#" s))
  else fail line "expected an operand (rN or #imm), got %S" s

let reg line s =
  match operand line s with
  | Reg r -> r
  | Imm _ -> fail line "expected a register, got %S" s

let args_of line s =
  (* "a, b, c" possibly empty *)
  let s = strip s in
  if s = "" then []
  else List.map (fun a -> operand line (strip a)) (String.split_on_char ',' s)

(* "name(arg, ...)" *)
let call_of line s =
  match String.index_opt s '(' with
  | None -> fail line "expected a call, got %S" s
  | Some i ->
    let callee = strip (String.sub s 0 i) in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match String.rindex_opt rest ')' with
    | None -> fail line "unterminated argument list in %S" s
    | Some j -> (callee, args_of line (String.sub rest 0 j)))

let alu_of_name = function
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul" -> Some Mul
  | "div" -> Some Div
  | "rem" -> Some Rem
  | "and" -> Some And
  | "or" -> Some Or
  | "xor" -> Some Xor
  | "min" -> Some Min
  | "max" -> Some Max
  | _ -> None

let cmp_of_name = function
  | "eq" -> Some Eq
  | "ne" -> Some Ne
  | "lt" -> Some Lt
  | "le" -> Some Le
  | "gt" -> Some Gt
  | "ge" -> Some Ge
  | _ -> None

let shift_of_name = function
  | "lsl" -> Some Lsl
  | "lsr" -> Some Lsr
  | "asr" -> Some Asr
  | _ -> None

(* "[base + offset]" *)
let address_of line s =
  let s = strip s in
  if not (starts_with "[" s && String.length s > 2 && s.[String.length s - 1] = ']')
  then fail line "expected an address [base + offset], got %S" s
  else begin
    let inner = String.sub s 1 (String.length s - 2) in
    match split_on_string " + " inner with
    | [ b; o ] -> (operand line b, operand line o)
    | _ -> fail line "malformed address %S" s
  end

(* ---- Instructions ----------------------------------------------------- *)

let inst_of_line line s =
  let s = strip s in
  match split_on_string " = " s with
  | [ lhs; rhs ] -> (
    let dst = reg line lhs in
    let rhs = strip rhs in
    match String.index_opt rhs ' ' with
    | None ->
      (* "call f()" with no space before '(' — or malformed. *)
      if starts_with "call " rhs then assert false
      else if String.contains rhs '(' then begin
        let callee, args = call_of line rhs in
        Call { dst = Some dst; callee; args }
      end
      else fail line "malformed instruction %S" s
    | Some sp -> (
      let op = String.sub rhs 0 sp in
      let rest = strip (String.sub rhs sp (String.length rhs - sp)) in
      match op with
      | "mov" -> Mov { dst; src = operand line rest }
      | "load" ->
        let base, offset = address_of line rest in
        Load { dst; base; offset }
      | "mac" -> (
        match args_of line rest with
        | [ acc; a; b ] -> Mac { dst; acc; a; b }
        | _ -> fail line "mac needs three operands in %S" s)
      | "call" ->
        let callee, args = call_of line rest in
        Call { dst = Some dst; callee; args }
      | "reload" ->
        if starts_with "slot" rest then
          Spill_load { dst; slot = int_of line (after "slot" rest) }
        else fail line "malformed reload %S" s
      | _ -> (
        let two a b = (operand line a, operand line b) in
        let pair () =
          match String.split_on_char ',' rest with
          | [ a; b ] -> two a b
          | _ -> fail line "expected two operands in %S" s
        in
        match alu_of_name op with
        | Some alu ->
          let a, b = pair () in
          Alu { dst; op = alu; a; b }
        | None -> (
          match shift_of_name op with
          | Some sh ->
            let a, amount = pair () in
            Shift { dst; op = sh; a; amount }
          | None ->
            if starts_with "cmp." op then begin
              match cmp_of_name (after "cmp." op) with
              | Some c ->
                let a, b = pair () in
                Cmp { dst; op = c; a; b }
              | None -> fail line "unknown compare %S" op
            end
            else fail line "unknown operation %S" op))))
  | _ ->
    if starts_with "store " s then begin
      match split_on_string " -> " (after "store " s) with
      | [ src; addr ] ->
        let base, offset = address_of line addr in
        Store { src = operand line src; base; offset }
      | _ -> fail line "malformed store %S" s
    end
    else if starts_with "spill " s then begin
      match split_on_string " -> " (after "spill " s) with
      | [ src; slot ] when starts_with "slot" (strip slot) ->
        Spill_store
          { src = reg line src; slot = int_of line (after "slot" (strip slot)) }
      | _ -> fail line "malformed spill %S" s
    end
    else if starts_with "call " s then begin
      let callee, args = call_of line (after "call " s) in
      Call { dst = None; callee; args }
    end
    else fail line "unrecognised instruction %S" s

let term_of_line line s =
  let s = strip s in
  if starts_with "jump " s then Some (Jump (strip (after "jump " s)))
  else if starts_with "branch " s then begin
    (* "branch rN ? a : b" *)
    match split_on_string " ? " (after "branch " s) with
    | [ c; rest ] -> (
      match split_on_string " : " rest with
      | [ ifso; ifnot ] ->
        Some
          (Branch
             { cond = reg line c; ifso = strip ifso; ifnot = strip ifnot })
      | _ -> fail line "malformed branch %S" s)
    | _ -> fail line "malformed branch %S" s
  end
  else if s = "return" then Some (Return None)
  else if starts_with "return " s then
    Some (Return (Some (operand line (after "return " s))))
  else if starts_with "tailcall " s then begin
    let callee, args = call_of line (after "tailcall " s) in
    Some (Tail_call { callee; args })
  end
  else None

(* ---- Top level --------------------------------------------------------- *)

type fstate = {
  mutable cur_label : label option;
  mutable cur_align : int;
  mutable cur_insts : inst list;  (** Reversed. *)
  mutable blocks : block list;  (** Reversed. *)
}

let data_of_line line s =
  (* "data <name> @<base> words=<n> init=<init>" *)
  match String.split_on_char ' ' (strip s) with
  | [ name; base; words; init ]
    when starts_with "@" base && starts_with "words=" words
         && starts_with "init=" init ->
    let init_spec = after "init=" init in
    let parse_two prefix =
      let inner =
        String.sub init_spec (String.length prefix + 1)
          (String.length init_spec - String.length prefix - 2)
      in
      match String.split_on_char ',' inner with
      | [ a; b ] -> (int_of line a, int_of line b)
      | _ -> fail line "malformed initialiser %S" init_spec
    in
    let init =
      if init_spec = "zeros" then Zeros
      else if starts_with "ramp(" init_spec then begin
        let start, step = parse_two "ramp" in
        Ramp { start; step }
      end
      else if starts_with "prand(" init_spec then begin
        let seed, bound = parse_two "prand" in
        Pseudo_random { seed; bound }
      end
      else fail line "unknown initialiser %S" init_spec
    in
    {
      dname = name;
      base = int_of line (after "@" base);
      words = int_of line (after "words=" words);
      init;
    }
  | _ -> fail line "malformed data declaration %S" s

let func_header_of_line line s =
  (* "func <name>(params) [align=16] [slots=4]:" *)
  let s = strip s in
  if s.[String.length s - 1] <> ':' then fail line "missing ':' in %S" s;
  let s = String.sub s 0 (String.length s - 1) in
  let name_and_params, attrs =
    match String.index_opt s ')' with
    | None -> fail line "missing parameter list in %S" s
    | Some i ->
      ( String.sub s 0 (i + 1),
        String.split_on_char ' ' (strip (String.sub s (i + 1) (String.length s - i - 1))) )
  in
  let callee, params = call_of line name_and_params in
  let params =
    List.map
      (function Reg r -> r | Imm _ -> fail line "parameters must be registers")
      params
  in
  let falign = ref 0 and slots = ref 0 in
  List.iter
    (fun a ->
      if a = "" then ()
      else if starts_with "align=" a then falign := int_of line (after "align=" a)
      else if starts_with "slots=" a then slots := int_of line (after "slots=" a)
      else fail line "unknown function attribute %S" a)
    attrs;
  (callee, params, !falign, !slots)

let program text =
  let lines = String.split_on_char '\n' text in
  let entry = ref None in
  let data = ref [] in
  let funcs = ref [] in
  let current : (string * reg list * int * int * fstate) option ref =
    ref None
  in
  let flush_block line (st : fstate) term =
    match st.cur_label with
    | None -> fail line "terminator outside a block"
    | Some label ->
      st.blocks <-
        { label; insts = List.rev st.cur_insts; term; balign = st.cur_align }
        :: st.blocks;
      st.cur_label <- None;
      st.cur_align <- 0;
      st.cur_insts <- []
  in
  let finish_func line =
    match !current with
    | None -> ()
    | Some (name, params, falign, slots, st) ->
      if st.cur_label <> None then fail line "unterminated block in %s" name;
      funcs :=
        {
          name;
          params;
          blocks = List.rev st.blocks;
          falign;
          stack_slots = slots;
        }
        :: !funcs;
      current := None
  in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let s = strip raw in
      if s = "" then ()
      else if starts_with "entry " s then entry := Some (strip (after "entry " s))
      else if starts_with "data " s then
        data := data_of_line line (after "data " s) :: !data
      else if starts_with "func " s then begin
        finish_func line;
        let name, params, falign, slots =
          func_header_of_line line (after "func " s)
        in
        current :=
          Some
            ( name,
              params,
              falign,
              slots,
              { cur_label = None; cur_align = 0; cur_insts = []; blocks = [] }
            )
      end
      else begin
        match !current with
        | None -> fail line "statement outside a function: %S" s
        | Some (_, _, _, _, st) ->
          if starts_with ".align " s then
            st.cur_align <- int_of line (after ".align " s)
          else if String.length s > 1 && s.[String.length s - 1] = ':' then begin
            if st.cur_label <> None then
              fail line "label inside an unterminated block";
            st.cur_label <- Some (String.sub s 0 (String.length s - 1))
          end
          else begin
            match term_of_line line s with
            | Some t -> flush_block line st t
            | None -> (
              match st.cur_label with
              | None -> fail line "instruction outside a block: %S" s
              | Some _ -> st.cur_insts <- inst_of_line line s :: st.cur_insts)
          end
      end)
    lines;
  finish_func (List.length lines);
  let entry_func =
    match !entry with
    | Some e -> e
    | None -> fail 0 "missing 'entry' declaration"
  in
  let funcs = List.rev !funcs in
  let data = List.rev !data in
  (* Memory layout: recompute the same way Builder.finish does. *)
  let data_end =
    List.fold_left (fun acc d -> max acc (d.base + (d.words * word_bytes))) 64
      data
  in
  let stack_base = (data_end + 63) land lnot 63 in
  let stack_bytes = List.length funcs * Builder.frame_words * word_bytes in
  let mem_words = ((stack_base + stack_bytes) / word_bytes) + 16 in
  let program = { funcs; entry_func; data; mem_words; stack_base } in
  Validate.check_exn program;
  program
