(** Imperative construction DSL for IR programs.

    Workload generators and tests use this instead of writing record
    literals: it allocates fresh registers and labels, tracks the current
    block, lays out the data segment, and provides structured control-flow
    helpers ([counted_loop], [if_]) that expand to the do-while CFG shape the
    unrolling and unswitching passes recognise. *)

open Types

type t = {
  mutable funcs_rev : func list;
  mutable data_rev : data_decl list;
  mutable next_data_base : int;
}

type fb = {
  parent : t;
  fname : string;
  params : reg list;
  mutable next_reg : int;
  mutable next_label : int;
  mutable done_blocks_rev : block list;
  mutable cur_label : label option;  (** [None] between blocks. *)
  mutable cur_insts_rev : inst list;
}

let create () = { funcs_rev = []; data_rev = []; next_data_base = 64 }

let array t name ~words ~init =
  if words <= 0 then invalid_arg "Builder.array: words must be positive";
  let base = t.next_data_base in
  t.data_rev <- { dname = name; base; words; init } :: t.data_rev;
  t.next_data_base <- base + (words * word_bytes);
  base

let begin_func t name ~nparams =
  let params = List.init nparams (fun i -> i) in
  {
    parent = t;
    fname = name;
    params;
    next_reg = nparams;
    next_label = 0;
    done_blocks_rev = [];
    cur_label = Some "entry";
    cur_insts_rev = [];
  }

let fresh fb =
  let r = fb.next_reg in
  fb.next_reg <- r + 1;
  r

let fresh_label fb hint =
  let l = Printf.sprintf "%s%d" hint fb.next_label in
  fb.next_label <- fb.next_label + 1;
  l

let emit fb inst =
  if fb.cur_label = None then
    invalid_arg
      (Printf.sprintf "Builder.emit: no open block in %s" fb.fname);
  fb.cur_insts_rev <- inst :: fb.cur_insts_rev

let terminate fb term =
  match fb.cur_label with
  | None ->
    invalid_arg
      (Printf.sprintf "Builder.terminate: no open block in %s" fb.fname)
  | Some label ->
    fb.done_blocks_rev <-
      { label; insts = List.rev fb.cur_insts_rev; term; balign = 0 }
      :: fb.done_blocks_rev;
    fb.cur_label <- None;
    fb.cur_insts_rev <- []

let start_block fb label =
  if fb.cur_label <> None then
    invalid_arg
      (Printf.sprintf
         "Builder.start_block: previous block of %s not terminated" fb.fname);
  fb.cur_label <- Some label;
  fb.cur_insts_rev <- []

(* Convenience emitters returning the destination register. *)

let alu fb op a b =
  let dst = fresh fb in
  emit fb (Alu { dst; op; a; b });
  dst

let cmp fb op a b =
  let dst = fresh fb in
  emit fb (Cmp { dst; op; a; b });
  dst

let mac fb acc a b =
  let dst = fresh fb in
  emit fb (Mac { dst; acc; a; b });
  dst

let shift fb op a amount =
  let dst = fresh fb in
  emit fb (Shift { dst; op; a; amount });
  dst

let mov fb src =
  let dst = fresh fb in
  emit fb (Mov { dst; src });
  dst

let load fb base offset =
  let dst = fresh fb in
  emit fb (Load { dst; base; offset });
  dst

let store fb src base offset = emit fb (Store { src; base; offset })

let call fb callee args =
  let dst = fresh fb in
  emit fb (Call { dst = Some dst; callee; args });
  dst

let call_void fb callee args = emit fb (Call { dst = None; callee; args })

(* Structured control flow. *)

let if_ fb cond ~then_ ~else_ =
  let lthen = fresh_label fb "then" in
  let lelse = fresh_label fb "else" in
  let ljoin = fresh_label fb "join" in
  terminate fb (Branch { cond; ifso = lthen; ifnot = lelse });
  (* The else block is placed first so the not-taken edge is the
     fall-through, matching the layout convention (only [ifnot] elides);
     the block-reordering pass may later invert hot branches. *)
  start_block fb lelse;
  else_ ();
  terminate fb (Jump ljoin);
  start_block fb lthen;
  then_ ();
  terminate fb (Jump ljoin);
  start_block fb ljoin

(** [counted_loop fb ~from ~limit ~step body] emits a do-while loop:
    {v
        i = from
      loop:
        body i
        i = i + step
        c = cmp.lt i, limit
        branch c ? loop : exit
      exit:
    v}
    The body callback may itself open and close blocks; the increment and
    test land in whatever block is open when the body returns.  The loop
    executes at least once, matching the shape produced by a rotating
    compiler front end and recognised by the unroller. *)
let counted_loop fb ~from ~limit ~step body =
  let i = fresh fb in
  emit fb (Mov { dst = i; src = Imm from });
  let lloop = fresh_label fb "loop" in
  let lexit = fresh_label fb "exit" in
  terminate fb (Jump lloop);
  start_block fb lloop;
  body i;
  emit fb (Alu { dst = i; op = Add; a = Reg i; b = Imm step });
  let c = cmp fb Lt (Reg i) limit in
  terminate fb (Branch { cond = c; ifso = lloop; ifnot = lexit });
  start_block fb lexit

let end_func fb =
  if fb.cur_label <> None then
    invalid_arg
      (Printf.sprintf "Builder.end_func: open block left in %s" fb.fname);
  let blocks = List.rev fb.done_blocks_rev in
  fb.parent.funcs_rev <-
    {
      name = fb.fname;
      params = fb.params;
      blocks;
      falign = 0;
      stack_slots = 0;
    }
    :: fb.parent.funcs_rev

(** Define a whole function in one call; the body receives the function
    builder and the parameter registers and must leave every block
    terminated. *)
let func t name ~nparams body =
  let fb = begin_func t name ~nparams in
  body fb fb.params;
  end_func fb

let frame_words = 256
(** Stack area reserved per function for spill slots. *)

let finish t ~entry =
  let funcs = List.rev t.funcs_rev in
  let data = List.rev t.data_rev in
  let data_end = t.next_data_base in
  let stack_base = (data_end + 63) land lnot 63 in
  let stack_bytes = List.length funcs * frame_words * word_bytes in
  let mem_words = ((stack_base + stack_bytes) / word_bytes) + 16 in
  let program = { funcs; entry_func = entry; data; mem_words; stack_base } in
  Validate.check_exn program;
  program
