(** Reference interpreter over a placed image.

    One run produces both the functional result (the checksum every
    optimisation pass must preserve) and the execution profile the timing
    model consumes.  Semantics are 32-bit two's-complement with total
    division (x/0 = 0) and modulo-32 shift amounts, so every program
    terminates deterministically. *)

exception Fuel_exhausted
(** Raised when the dynamic instruction budget is exceeded. *)

exception Runtime_error of string
(** Out-of-bounds memory access or call-stack overflow — either indicates
    a bug in a workload builder or a miscompilation. *)

val norm : int -> int
(** Normalise to signed 32-bit; exposed for constant folding. *)

val eval_alu : Types.alu_op -> int -> int -> int
(** ALU semantics before normalisation; shared with {!Passes}' constant
    folder so both always agree. *)

val eval_cmp : Types.cmp_op -> int -> int -> int
val eval_shift : Types.shift_op -> int -> int -> int

val max_call_depth : int

val run :
  ?fuel:int -> ?trace:bool -> Layout.t -> int * Profile.t
(** [run image] executes from the entry function and returns
    [(checksum, profile)].  [fuel] bounds dynamic instructions (default
    5e7); [trace:false] skips address-trace collection (the profile's
    histograms are then empty), roughly halving the cost of
    checksum-only runs. *)

val run_program :
  ?fuel:int -> ?trace:bool -> Types.program -> int * Profile.t
(** Place and run in one step. *)

val run_traces :
  ?fuel:int -> Types.program -> int * int array * int array
(** [run_traces program] returns (checksum, data byte addresses in access
    order, collapsed 8-byte fetch-block ids) — the raw inputs of the
    reuse analysis, for validating the analytic cache models against
    exact simulation. *)
