(** Code placement: turn a transformed program into an executable image with
    concrete instruction addresses.

    Placement is where several optimisation passes acquire their cost or
    benefit:
    - block order (the reorder-blocks pass permutes [func.blocks]) decides
      which jumps become fall-throughs and how tightly hot code packs into
      I-cache blocks;
    - alignment requests ([balign]/[falign] set by the alignment passes) pad
      the image, growing the footprint in exchange for fewer I-cache blocks
      spanned by hot loop bodies;
    - a [Branch] whose not-taken target is not the next placed block needs a
      companion unconditional jump, exactly like real codegen, so bad layout
      costs both space and execution time.

    Every instruction occupies {!Types.inst_bytes} bytes. *)

open Types

type placed_block = {
  p_label : label;
  p_insts : inst array;
  p_addrs : int array;  (** Byte address of each instruction. *)
  p_term : terminator;
  p_term_addr : int;  (** Address of the terminator instruction. *)
  p_term_elided : bool;
      (** True for a [Jump] to the immediately following block: no encoded
          or executed instruction. *)
  p_extra_jump_addr : int;
      (** Address of the companion jump for a [Branch] whose [ifnot] is not
          the fall-through, or -1. *)
  p_next : int;  (** Index of the block placed next in this function, or -1. *)
  p_branch_site : int;  (** Global id of the branch terminator, or -1. *)
}

type placed_func = {
  pf_func : func;
  pf_index : int;
  pf_blocks : placed_block array;
  pf_block_of_label : (label, int) Hashtbl.t;
  pf_stack_base : int;  (** Byte address of this function's spill area. *)
  pf_max_reg : int;
}

type t = {
  program : program;
  pfuncs : placed_func array;
  pfunc_of_name : (string, int) Hashtbl.t;
  code_bytes : int;
  n_branch_sites : int;
}

let align_up addr a = if a <= 1 then addr else (addr + a - 1) land lnot (a - 1)

let place program =
  let addr = ref 0 in
  let branch_sites = ref 0 in
  let pfuncs =
    Array.of_list program.funcs
    |> Array.mapi (fun fi func ->
           addr := align_up !addr func.falign;
           let blocks = Array.of_list func.blocks in
           let n = Array.length blocks in
           let block_of_label = Hashtbl.create (2 * n) in
           Array.iteri
             (fun i b -> Hashtbl.replace block_of_label b.label i)
             blocks;
           let placed =
             Array.mapi
               (fun i b ->
                 addr := align_up !addr b.balign;
                 let insts = Array.of_list b.insts in
                 let addrs =
                   Array.map
                     (fun _ ->
                       let a = !addr in
                       addr := !addr + inst_bytes;
                       a)
                     insts
                 in
                 let next = if i + 1 < n then i + 1 else -1 in
                 let next_label =
                   if next >= 0 then Some blocks.(next).label else None
                 in
                 let term_elided, extra_jump, site =
                   match b.term with
                   | Jump target -> (Some target = next_label, false, false)
                   | Branch { ifnot; _ } ->
                     (false, Some ifnot <> next_label, true)
                   | Return _ | Tail_call _ -> (false, false, false)
                 in
                 let term_addr = !addr in
                 if not term_elided then addr := !addr + inst_bytes;
                 let extra_jump_addr =
                   if extra_jump then begin
                     let a = !addr in
                     addr := !addr + inst_bytes;
                     a
                   end
                   else -1
                 in
                 let branch_site =
                   if site then begin
                     let s = !branch_sites in
                     incr branch_sites;
                     s
                   end
                   else -1
                 in
                 {
                   p_label = b.label;
                   p_insts = insts;
                   p_addrs = addrs;
                   p_term = b.term;
                   p_term_addr = term_addr;
                   p_term_elided = term_elided;
                   p_extra_jump_addr = extra_jump_addr;
                   p_next = next;
                   p_branch_site = branch_site;
                 })
               blocks
           in
           {
             pf_func = func;
             pf_index = fi;
             pf_blocks = placed;
             pf_block_of_label = block_of_label;
             pf_stack_base =
               program.stack_base
               + (fi * Builder.frame_words * word_bytes);
             pf_max_reg = max_reg func;
           })
  in
  let pfunc_of_name = Hashtbl.create 32 in
  Array.iteri
    (fun i pf -> Hashtbl.replace pfunc_of_name pf.pf_func.name i)
    pfuncs;
  {
    program;
    pfuncs;
    pfunc_of_name;
    code_bytes = !addr;
    n_branch_sites = !branch_sites;
  }

let func_of_name t name =
  match Hashtbl.find_opt t.pfunc_of_name name with
  | Some i -> t.pfuncs.(i)
  | None -> invalid_arg ("Layout.func_of_name: unknown function " ^ name)
