(** Top level of the simulator: compile, run once, time anywhere.

    The expensive step (interpretation) is independent of the
    microarchitecture, so callers cache {!run} values per
    (program, canonical setting) and reuse them across the whole design
    space — the trace-once/model-many structure that makes the paper's
    7-million-point sample tractable here. *)

type run = {
  setting : Passes.Flags.setting;
  profile : Ir.Profile.t;
  checksum : int;  (** Functional result; identical across settings. *)
  size : int option;
      (** Static post-pipeline instruction count, persisted with store
          record v2 so multi-objective training never recompiles.
          [None] only for runs imported from v1 records; consumers
          recompute on that miss. *)
}

val profile_of : ?setting:Passes.Flags.setting -> Ir.Types.program -> run
(** Compile under [setting] (default -O3), place and interpret once. *)

val export : run -> Obs.Json.t
(** JSON rendering of a run — all counts, so it round-trips bit-exactly:
    [import (export r) = Ok r].  The serialisation boundary the
    content-addressed evaluation store uses to persist interpreter
    output across processes. *)

val import : Obs.Json.t -> (run, string) result
(** Strict inverse of {!export}: any missing or mistyped field, or an
    out-of-range setting, yields a human-readable [Error]. *)

val time : run -> Uarch.Config.t -> Pipeline.verdict
(** Price the profiled run on a configuration (microseconds). *)

val seconds : run -> Uarch.Config.t -> float

val energy_mj : run -> Uarch.Config.t -> float
(** Energy estimate from the Cacti-style model: dynamic cache and core
    energy plus leakage over the run.  Used by the design-space
    exploration example (the paper notes some configurations trade 21%
    power) and the energy objective.  Always finite and non-negative,
    even for degenerate (zero-instruction) runs. *)
