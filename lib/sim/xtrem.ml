(** Top level of the simulator: compile, run once, time anywhere.

    [profile_of] compiles a program under a flag setting, places it and
    interprets it once; [time] evaluates the resulting profile on any
    microarchitecture.  The expensive step (interpretation) is independent
    of the microarchitecture, so callers cache profiles per
    (program, canonical setting) and reuse them across the whole design
    space — the trace-once/model-many structure that makes the paper's
    7-million-point sample tractable here. *)

type run = {
  setting : Passes.Flags.setting;
  profile : Ir.Profile.t;
  checksum : int;
}

(* Telemetry: interpreted runs with their dynamic instruction and
   memory-access volume, and timing-model evaluations.  Counters are
   atomic (several domains profile and price concurrently) and purely
   observational — recorded from the finished profile, so the
   interpreter's hot loop is untouched. *)
let m_runs = Obs.Metrics.counter "interp.runs"
let m_insts = Obs.Metrics.counter "interp.dyn_insts"
let m_mem = Obs.Metrics.counter "interp.mem_accesses"
let m_evals = Obs.Metrics.counter "sim.evals"

let profile_of ?setting program =
  Obs.Span.with_ "sim.profile" (fun () ->
      let image = Passes.Driver.compile_to_image ?setting program in
      let t0 = Obs.Clock.now_s () in
      let checksum, profile = Ir.Interp.run image in
      let dur = Obs.Clock.now_s () -. t0 in
      Obs.Metrics.add m_runs 1;
      Obs.Metrics.add m_insts profile.Ir.Profile.dyn_insts;
      Obs.Metrics.add m_mem (Ir.Profile.mem_accesses profile);
      Obs.Span.event "interp"
        [
          ("dur_s", Obs.Json.Float dur);
          ("dyn_insts", Obs.Json.Int profile.Ir.Profile.dyn_insts);
        ];
      {
        setting = Option.value setting ~default:Passes.Flags.o3;
        profile;
        checksum;
      })

let time run u =
  Obs.Metrics.add m_evals 1;
  Pipeline.evaluate run.profile u

let seconds run u = (time run u).Pipeline.seconds

(** Energy estimate in millijoules: dynamic cache/access energy plus
    leakage over the run, from the Cacti-style model.  Used by the power
    example (the paper notes some configurations trade 21% power). *)
let energy_mj run (u : Uarch.Config.t) =
  let v = time run u in
  let p = run.profile in
  let cache_energy accesses ~size ~assoc ~block =
    accesses *. Uarch.Cacti.access_energy_nj ~size ~assoc ~block *. 1e-6
  in
  let ienergy =
    cache_energy
      (float_of_int p.Ir.Profile.dyn_insts)
      ~size:u.Uarch.Config.il1_size ~assoc:u.Uarch.Config.il1_assoc
      ~block:u.Uarch.Config.il1_block
  in
  let denergy =
    cache_energy
      (float_of_int (Ir.Profile.mem_accesses p))
      ~size:u.Uarch.Config.dl1_size ~assoc:u.Uarch.Config.dl1_assoc
      ~block:u.Uarch.Config.dl1_block
  in
  let core_energy = float_of_int p.Ir.Profile.dyn_insts *. 0.12 *. 1e-6 in
  let leakage =
    (Uarch.Cacti.leakage_mw ~size:u.Uarch.Config.il1_size
    +. Uarch.Cacti.leakage_mw ~size:u.Uarch.Config.dl1_size)
    *. v.Pipeline.seconds
  in
  ienergy +. denergy +. core_energy +. leakage
