(** Top level of the simulator: compile, run once, time anywhere.

    [profile_of] compiles a program under a flag setting, places it and
    interprets it once; [time] evaluates the resulting profile on any
    microarchitecture.  The expensive step (interpretation) is independent
    of the microarchitecture, so callers cache profiles per
    (program, canonical setting) and reuse them across the whole design
    space — the trace-once/model-many structure that makes the paper's
    7-million-point sample tractable here. *)

type run = {
  setting : Passes.Flags.setting;
  profile : Ir.Profile.t;
  checksum : int;
}

let profile_of ?setting program =
  let image = Passes.Driver.compile_to_image ?setting program in
  let checksum, profile = Ir.Interp.run image in
  {
    setting = Option.value setting ~default:Passes.Flags.o3;
    profile;
    checksum;
  }

let time run u = Pipeline.evaluate run.profile u

let seconds run u = (time run u).Pipeline.seconds

(** Energy estimate in millijoules: dynamic cache/access energy plus
    leakage over the run, from the Cacti-style model.  Used by the power
    example (the paper notes some configurations trade 21% power). *)
let energy_mj run (u : Uarch.Config.t) =
  let v = time run u in
  let p = run.profile in
  let cache_energy accesses ~size ~assoc ~block =
    accesses *. Uarch.Cacti.access_energy_nj ~size ~assoc ~block *. 1e-6
  in
  let ienergy =
    cache_energy
      (float_of_int p.Ir.Profile.dyn_insts)
      ~size:u.Uarch.Config.il1_size ~assoc:u.Uarch.Config.il1_assoc
      ~block:u.Uarch.Config.il1_block
  in
  let denergy =
    cache_energy
      (float_of_int (Ir.Profile.mem_accesses p))
      ~size:u.Uarch.Config.dl1_size ~assoc:u.Uarch.Config.dl1_assoc
      ~block:u.Uarch.Config.dl1_block
  in
  let core_energy = float_of_int p.Ir.Profile.dyn_insts *. 0.12 *. 1e-6 in
  let leakage =
    (Uarch.Cacti.leakage_mw ~size:u.Uarch.Config.il1_size
    +. Uarch.Cacti.leakage_mw ~size:u.Uarch.Config.dl1_size)
    *. v.Pipeline.seconds
  in
  ienergy +. denergy +. core_energy +. leakage
