(** Top level of the simulator: compile, run once, time anywhere.

    [profile_of] compiles a program under a flag setting, places it and
    interprets it once; [time] evaluates the resulting profile on any
    microarchitecture.  The expensive step (interpretation) is independent
    of the microarchitecture, so callers cache profiles per
    (program, canonical setting) and reuse them across the whole design
    space — the trace-once/model-many structure that makes the paper's
    7-million-point sample tractable here. *)

type run = {
  setting : Passes.Flags.setting;
  profile : Ir.Profile.t;
  checksum : int;
  size : int option;
      (** Static post-pipeline instruction count; [None] only for runs
          imported from pre-v2 store records. *)
}

(* Telemetry: interpreted runs with their dynamic instruction and
   memory-access volume, and timing-model evaluations.  Counters are
   atomic (several domains profile and price concurrently) and purely
   observational — recorded from the finished profile, so the
   interpreter's hot loop is untouched. *)
let m_runs = Obs.Metrics.counter "interp.runs"
let m_insts = Obs.Metrics.counter "interp.dyn_insts"
let m_mem = Obs.Metrics.counter "interp.mem_accesses"
let m_evals = Obs.Metrics.counter "sim.evals"

let profile_of ?setting program =
  Obs.Span.with_ "sim.profile" (fun () ->
      let compiled = Passes.Driver.compile ?setting program in
      let size = Ir.Types.program_size compiled in
      let image = Ir.Layout.place compiled in
      let t0 = Obs.Clock.now_s () in
      let checksum, profile = Ir.Interp.run image in
      let dur = Obs.Clock.now_s () -. t0 in
      Obs.Metrics.add m_runs 1;
      Obs.Metrics.add m_insts profile.Ir.Profile.dyn_insts;
      Obs.Metrics.add m_mem (Ir.Profile.mem_accesses profile);
      Obs.Span.event "interp"
        [
          ("dur_s", Obs.Json.Float dur);
          ("dyn_insts", Obs.Json.Int profile.Ir.Profile.dyn_insts);
        ];
      {
        setting = Option.value setting ~default:Passes.Flags.o3;
        profile;
        checksum;
        size = Some size;
      })

(* ---- disk round-trip -------------------------------------------------- *)

(* A profile is counts all the way down — ints, int arrays and sparse
   integer histograms — so a JSON rendering with [Obs.Json.Int]
   everywhere round-trips bit-exactly.  [export]/[import] are the
   serialisation boundary the content-addressed evaluation store
   ([Store]) uses to persist interpreter output across processes:
   [import (export r) = Ok r] for every run, enforced by the test
   suite. *)

module J = Obs.Json

let ints a = J.List (Array.to_list (Array.map (fun i -> J.Int i) a))

let hist_json (h : Prelude.Reuse.histogram) =
  J.Obj
    [
      ( "entries",
        J.List
          (Array.to_list
             (Array.map
                (fun (d, c) -> J.List [ J.Int d; J.Int c ])
                h.Prelude.Reuse.entries)) );
      ("cold", J.Int h.Prelude.Reuse.cold);
      ("total", J.Int h.Prelude.Reuse.total);
    ]

let hists_json hs =
  J.List
    (Array.to_list
       (Array.map
          (fun (bs, h) ->
            J.Obj [ ("block", J.Int bs); ("hist", hist_json h) ])
          hs))

let export run =
  let p = run.profile in
  (* [size] entered the payload with store record v2; omitting it when
     absent keeps re-exports of v1 imports honest. *)
  let size_field =
    match run.size with None -> [] | Some n -> [ ("size", J.Int n) ]
  in
  J.Obj
    ([
       ("setting", ints run.setting);
       ("checksum", J.Int run.checksum);
     ]
    @ size_field
    @ [
      ( "profile",
        J.Obj
          [
            ("dyn_insts", J.Int p.Ir.Profile.dyn_insts);
            ("alu", J.Int p.Ir.Profile.alu);
            ("mac", J.Int p.Ir.Profile.mac);
            ("shift", J.Int p.Ir.Profile.shift);
            ("cmp", J.Int p.Ir.Profile.cmp);
            ("mov", J.Int p.Ir.Profile.mov);
            ("loads", J.Int p.Ir.Profile.loads);
            ("stores", J.Int p.Ir.Profile.stores);
            ("spill_loads", J.Int p.Ir.Profile.spill_loads);
            ("spill_stores", J.Int p.Ir.Profile.spill_stores);
            ("calls", J.Int p.Ir.Profile.calls);
            ("tail_calls", J.Int p.Ir.Profile.tail_calls);
            ("rets", J.Int p.Ir.Profile.rets);
            ("branches", J.Int p.Ir.Profile.branches);
            ("taken_branches", J.Int p.Ir.Profile.taken_branches);
            ("jumps", J.Int p.Ir.Profile.jumps);
            ("reg_reads", J.Int p.Ir.Profile.reg_reads);
            ("reg_writes", J.Int p.Ir.Profile.reg_writes);
            ( "branch_sites",
              J.List
                (Array.to_list
                   (Array.map
                      (fun (e, t) -> J.List [ J.Int e; J.Int t ])
                      p.Ir.Profile.branch_sites)) );
            ("d_hists", hists_json p.Ir.Profile.d_hists);
            ("i_hists", hists_json p.Ir.Profile.i_hists);
            ("btb_hist", hist_json p.Ir.Profile.btb_hist);
            ("gap_load", ints p.Ir.Profile.gap_load);
            ("gap_long", ints p.Ir.Profile.gap_long);
            ("adjacent_dep_pairs", J.Int p.Ir.Profile.adjacent_dep_pairs);
              ("code_bytes", J.Int p.Ir.Profile.code_bytes);
              ("checksum", J.Int p.Ir.Profile.checksum);
            ] );
      ])

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (J.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or malformed %S field" name)

let int_array j =
  match J.to_list j with
  | None -> None
  | Some items ->
    let out = Array.make (List.length items) 0 in
    let ok = ref true in
    List.iteri
      (fun i v ->
        match v with J.Int n -> out.(i) <- n | _ -> ok := false)
      items;
    if !ok then Some out else None

let int_pairs j =
  match J.to_list j with
  | None -> None
  | Some items ->
    let out =
      List.filter_map
        (function
          | J.List [ J.Int a; J.Int b ] -> Some (a, b)
          | _ -> None)
        items
    in
    if List.length out = List.length items then Some (Array.of_list out)
    else None

let hist_of_json j =
  match
    let* entries = field "entries" int_pairs j in
    let* cold = field "cold" (function J.Int n -> Some n | _ -> None) j in
    let* total = field "total" (function J.Int n -> Some n | _ -> None) j in
    Ok { Prelude.Reuse.entries; cold; total }
  with
  | Ok h -> Some h
  | Error _ -> None

let hists_of_json j =
  match J.to_list j with
  | None -> None
  | Some items ->
    let out =
      List.filter_map
        (fun item ->
          match
            ( Option.bind (J.member "block" item) (function
                | J.Int n -> Some n
                | _ -> None),
              Option.bind (J.member "hist" item) hist_of_json )
          with
          | Some bs, Some h -> Some (bs, h)
          | _ -> None)
        items
    in
    if List.length out = List.length items then Some (Array.of_list out)
    else None

let import j =
  let* setting = field "setting" int_array j in
  let* () =
    match Passes.Flags.validate setting with
    | () -> Ok ()
    | exception Invalid_argument e -> Error e
  in
  let* checksum = field "checksum" J.to_int j in
  (* Optional: absent from store records written before v2. *)
  let size = Option.bind (J.member "size" j) J.to_int in
  let* p = field "profile" Option.some j in
  let i name = field name J.to_int p in
  let* dyn_insts = i "dyn_insts" in
  let* alu = i "alu" in
  let* mac = i "mac" in
  let* shift = i "shift" in
  let* cmp = i "cmp" in
  let* mov = i "mov" in
  let* loads = i "loads" in
  let* stores = i "stores" in
  let* spill_loads = i "spill_loads" in
  let* spill_stores = i "spill_stores" in
  let* calls = i "calls" in
  let* tail_calls = i "tail_calls" in
  let* rets = i "rets" in
  let* branches = i "branches" in
  let* taken_branches = i "taken_branches" in
  let* jumps = i "jumps" in
  let* reg_reads = i "reg_reads" in
  let* reg_writes = i "reg_writes" in
  let* branch_sites = field "branch_sites" int_pairs p in
  let* d_hists = field "d_hists" hists_of_json p in
  let* i_hists = field "i_hists" hists_of_json p in
  let* btb_hist = field "btb_hist" hist_of_json p in
  let* gap_load = field "gap_load" int_array p in
  let* gap_long = field "gap_long" int_array p in
  let* adjacent_dep_pairs = i "adjacent_dep_pairs" in
  let* code_bytes = i "code_bytes" in
  let* profile_checksum = i "checksum" in
  Ok
    {
      setting;
      checksum;
      size;
      profile =
        {
          Ir.Profile.dyn_insts;
          alu;
          mac;
          shift;
          cmp;
          mov;
          loads;
          stores;
          spill_loads;
          spill_stores;
          calls;
          tail_calls;
          rets;
          branches;
          taken_branches;
          jumps;
          reg_reads;
          reg_writes;
          branch_sites;
          d_hists;
          i_hists;
          btb_hist;
          gap_load;
          gap_long;
          adjacent_dep_pairs;
          code_bytes;
          checksum = profile_checksum;
        };
    }

let time run u =
  Obs.Metrics.add m_evals 1;
  Pipeline.evaluate run.profile u

let seconds run u = (time run u).Pipeline.seconds

(** Energy estimate in millijoules: dynamic cache/access energy plus
    leakage over the run, from the Cacti-style model.  Used by the power
    example (the paper notes some configurations trade 21% power). *)
let energy_mj run (u : Uarch.Config.t) =
  let v = time run u in
  let p = run.profile in
  let cache_energy accesses ~size ~assoc ~block =
    accesses *. Uarch.Cacti.access_energy_nj ~size ~assoc ~block *. 1e-6
  in
  let ienergy =
    cache_energy
      (float_of_int p.Ir.Profile.dyn_insts)
      ~size:u.Uarch.Config.il1_size ~assoc:u.Uarch.Config.il1_assoc
      ~block:u.Uarch.Config.il1_block
  in
  let denergy =
    cache_energy
      (float_of_int (Ir.Profile.mem_accesses p))
      ~size:u.Uarch.Config.dl1_size ~assoc:u.Uarch.Config.dl1_assoc
      ~block:u.Uarch.Config.dl1_block
  in
  let core_energy = float_of_int p.Ir.Profile.dyn_insts *. 0.12 *. 1e-6 in
  let leakage =
    (Uarch.Cacti.leakage_mw ~size:u.Uarch.Config.il1_size
    +. Uarch.Cacti.leakage_mw ~size:u.Uarch.Config.dl1_size)
    *. v.Pipeline.seconds
  in
  let e = ienergy +. denergy +. core_energy +. leakage in
  (* Zero-instruction or otherwise degenerate runs must not poison
     objective vectors with NaN/negative energy. *)
  if Float.is_finite e && e >= 0.0 then e else 0.0
