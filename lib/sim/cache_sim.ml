(** Exact set-associative LRU cache simulation over raw address traces.

    The production path prices caches analytically from reuse-distance
    histograms ({!Cache}); this reference simulator replays the actual
    trace through a modelled cache, so tests and the validation
    experiment can quantify the analytic approximation instead of
    trusting it.  O(accesses * ways): only for validation runs. *)

type t = {
  sets : int;
  ways : int;
  block_bytes : int;
  tags : int array array;  (** [tags.(set)], most-recently-used first. *)
  sizes : int array;  (** Valid lines per set. *)
  mutable accesses : int;
  mutable misses : int;
}

let create ~sets ~ways ~block_bytes =
  if sets < 1 || ways < 1 then invalid_arg "Cache_sim.create";
  if block_bytes land (block_bytes - 1) <> 0 then
    invalid_arg "Cache_sim.create: block size must be a power of two";
  {
    sets;
    ways;
    block_bytes;
    tags = Array.init sets (fun _ -> Array.make ways (-1));
    sizes = Array.make sets 0;
    accesses = 0;
    misses = 0;
  }

(* Total accesses replayed through exact simulation, across all
   instances — validation-only volume, but it shows up in run traces
   so the cost of a validation pass is visible. *)
let m_accesses = Obs.Metrics.counter "cache_sim.accesses"

let access t addr =
  let block = addr / t.block_bytes in
  let set = block mod t.sets in
  let tag = block / t.sets in
  t.accesses <- t.accesses + 1;
  Obs.Metrics.add m_accesses 1;
  let line = t.tags.(set) in
  let n = t.sizes.(set) in
  (* Find the tag; move to front (LRU). *)
  let rec find i = if i >= n then -1 else if line.(i) = tag then i else find (i + 1) in
  let pos = find 0 in
  if pos >= 0 then begin
    (* Hit: rotate [0, pos] right by one. *)
    for j = pos downto 1 do
      line.(j) <- line.(j - 1)
    done;
    line.(0) <- tag
  end
  else begin
    t.misses <- t.misses + 1;
    let new_size = min t.ways (n + 1) in
    for j = new_size - 1 downto 1 do
      line.(j) <- line.(j - 1)
    done;
    line.(0) <- tag;
    t.sizes.(set) <- new_size
  end

let run ~sets ~ways ~block_bytes addrs =
  let t = create ~sets ~ways ~block_bytes in
  Array.iter (access t) addrs;
  t

let miss_rate t =
  if t.accesses = 0 then 0.0
  else float_of_int t.misses /. float_of_int t.accesses

(** Compare the analytic D-cache model against exact simulation of a
    program's data stream on a configuration; returns
    (exact misses, model misses, accesses). *)
let validate_dcache program (u : Uarch.Config.t) =
  let _, daddrs, _ = Ir.Interp.run_traces program in
  let exact =
    run
      ~sets:(Uarch.Config.dl1_sets u)
      ~ways:u.Uarch.Config.dl1_assoc ~block_bytes:u.Uarch.Config.dl1_block
      daddrs
  in
  let hist =
    Prelude.Reuse.histogram_of_addresses
      ~block_bytes:u.Uarch.Config.dl1_block daddrs
  in
  let model =
    Prelude.Reuse.expected_misses_capacity hist
      ~capacity_blocks:(Uarch.Config.dl1_sets u * u.Uarch.Config.dl1_assoc)
      ~ways:u.Uarch.Config.dl1_assoc
  in
  (exact.misses, model, Array.length daddrs)
