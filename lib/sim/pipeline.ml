(** First-order in-order pipeline timing model (Karkhanis–Smith style),
    standing in for the cycle-accurate Xtrem simulator the paper used.

    Cycle count decomposition for one profiled run on one configuration:

    - {b issue}: one instruction per cycle at width 1; at width 2 a pair
      issues together unless the second depends on the first
      ([adjacent_dep_pairs] from the profile) — the dual-issue upside is
      bounded by the program's adjacent-instruction parallelism;
    - {b dependence stalls}: load-use and long-op-use interlocks from the
      profile's gap histograms, priced against the configuration's actual
      load latency (address generation + D-cache access time from the
      Cacti model);
    - {b cache misses}: expected I- and D-miss counts from the reuse
      histograms, each costing the off-chip latency in cycles at the
      configuration's frequency;
    - {b control}: 2-bit-predictor direction mispredictions flush the
      front end; taken-branch BTB misses, unconditional jumps, calls and
      returns pay fetch-redirect bubbles scaled by the I-cache access
      latency.

    The same run therefore gets slower on a high-frequency core (more
    cycles per miss) and on very large or highly associative caches
    (longer hit latency), producing the non-monotone trade-offs the design
    space is about. *)

type verdict = {
  cycles : float;
  seconds : float;
  counters : Counters.t;
  icache : Cache.result;
  dcache : Cache.result;
  mispredicts : float;
  btb_misses : float;
  stall_cycles : float;
}

let mispredict_penalty = 5.0

let evaluate (p : Ir.Profile.t) (u : Uarch.Config.t) =
  let dyn = float_of_int p.Ir.Profile.dyn_insts in
  let freq = u.Uarch.Config.freq_mhz in
  (* Cache access latencies in cycles at this frequency. *)
  let d_hit_cycles =
    Uarch.Cacti.access_cycles ~size:u.Uarch.Config.dl1_size
      ~assoc:u.Uarch.Config.dl1_assoc ~block:u.Uarch.Config.dl1_block
      ~freq_mhz:freq
  in
  let i_hit_cycles =
    Uarch.Cacti.access_cycles ~size:u.Uarch.Config.il1_size
      ~assoc:u.Uarch.Config.il1_assoc ~block:u.Uarch.Config.il1_block
      ~freq_mhz:freq
  in
  let mem_cycles = float_of_int (Uarch.Cacti.memory_cycles ~freq_mhz:freq) in
  (* Issue cycles. *)
  let issue =
    match u.Uarch.Config.issue_width with
    | 1 -> dyn
    | _ ->
      let adjacent = float_of_int p.Ir.Profile.adjacent_dep_pairs in
      (* Every adjacent dependent pair breaks one potential dual issue. *)
      Float.max (dyn /. 2.0) ((dyn /. 2.0) +. (adjacent /. 2.0))
  in
  (* Dependence stalls: producer latency minus the gap the schedule left. *)
  let load_latency = 1 + d_hit_cycles + 1 in
  let long_latency = 3 in
  let gap_stalls hist latency =
    let acc = ref 0.0 in
    Array.iteri
      (fun g count ->
        let stall = latency - 1 - g in
        if stall > 0 then acc := !acc +. float_of_int (stall * count))
      hist;
    !acc
  in
  let stall_cycles =
    gap_stalls p.Ir.Profile.gap_load load_latency
    +. gap_stalls p.Ir.Profile.gap_long long_latency
  in
  (* Cache misses. *)
  let icache = Cache.icache p u in
  let dcache = Cache.dcache p u in
  let miss_cycles = (icache.Cache.misses +. dcache.Cache.misses) *. mem_cycles in
  (* Control. *)
  let mispredicts =
    Branch.direction_mispredictions p.Ir.Profile.branch_sites
  in
  let btb_misses = Branch.btb_misses p.Ir.Profile.btb_hist u in
  (* Fetch-redirect bubble: every non-sequential fetch restarts the
     front end through the I-cache, so its access latency is the floor.
     Calls and returns additionally push/pop the return linkage. *)
  let redirect = float_of_int i_hit_cycles in
  let control_cycles =
    (mispredicts *. mispredict_penalty)
    +. (btb_misses *. (1.0 +. redirect))
    +. (float_of_int p.Ir.Profile.taken_branches *. redirect)
    +. (float_of_int p.Ir.Profile.jumps *. redirect)
    +. (float_of_int p.Ir.Profile.calls *. (2.0 +. redirect))
    +. (float_of_int p.Ir.Profile.rets *. (2.0 +. redirect))
    +. (float_of_int p.Ir.Profile.tail_calls *. redirect)
  in
  let cycles = issue +. stall_cycles +. miss_cycles +. control_cycles in
  let seconds = cycles /. (float_of_int freq *. 1e6) in
  let per_cycle x = float_of_int x /. cycles in
  let counters =
    {
      Counters.ipc = dyn /. cycles;
      decode_rate = dyn /. cycles;
      regfile_rate =
        per_cycle (p.Ir.Profile.reg_reads + p.Ir.Profile.reg_writes);
      bpred_rate = per_cycle p.Ir.Profile.branches;
      icache_rate = dyn /. cycles;
      icache_miss_rate = icache.Cache.miss_rate;
      dcache_rate = per_cycle (Ir.Profile.mem_accesses p);
      dcache_miss_rate = dcache.Cache.miss_rate;
      alu_usage =
        per_cycle (p.Ir.Profile.alu + p.Ir.Profile.cmp + p.Ir.Profile.mov);
      mac_usage = per_cycle p.Ir.Profile.mac;
      shift_usage = per_cycle p.Ir.Profile.shift;
    }
  in
  {
    cycles;
    seconds;
    counters;
    icache;
    dcache;
    mispredicts;
    btb_misses;
    stall_cycles;
  }
