(** Cache behaviour of a profiled run on a concrete configuration.

    Thin adapter from execution profiles (reuse histograms per block size,
    precomputed by the interpreter) to expected miss counts under the
    Hill–Smith set-associative model in {!Prelude.Reuse}. *)

open Prelude

type result = {
  accesses : float;
  misses : float;
  miss_rate : float;  (** misses / accesses; 0 when there are no accesses. *)
}

let evaluate hist ~accesses ~sets ~ways =
  let capacity_blocks = sets * ways in
  let misses =
    Reuse.expected_misses_capacity hist ~capacity_blocks ~ways
  in
  let accesses = float_of_int accesses in
  {
    accesses;
    misses;
    miss_rate = (if accesses > 0.0 then misses /. accesses else 0.0);
  }

(** Data-cache behaviour: every load and store (spills included) is one
    access. *)
let dcache (p : Ir.Profile.t) (u : Uarch.Config.t) =
  let hist = Ir.Profile.d_hist p ~block_bytes:u.Uarch.Config.dl1_block in
  evaluate hist
    ~accesses:(Ir.Profile.mem_accesses p)
    ~sets:(Uarch.Config.dl1_sets u)
    ~ways:u.Uarch.Config.dl1_assoc

(** Instruction-cache behaviour: one access per fetched instruction; the
    reuse histogram is over fetch blocks, which is exactly where misses
    can occur. *)
let icache (p : Ir.Profile.t) (u : Uarch.Config.t) =
  let hist = Ir.Profile.i_hist p ~block_bytes:u.Uarch.Config.il1_block in
  evaluate hist ~accesses:p.Ir.Profile.dyn_insts
    ~sets:(Uarch.Config.il1_sets u)
    ~ways:u.Uarch.Config.il1_assoc
