(** Branch direction and target (BTB) models.

    Direction: each static branch site is predicted by a 2-bit saturating
    counter; under an IID per-site taken probability [p] the counter's
    stationary distribution is a birth–death chain with ratio
    [p/(1-p)], giving a closed-form steady-state misprediction rate.

    Target: the BTB is modelled as a set-associative cache over branch
    sites using the same reuse-distance machinery as the memory caches; a
    taken branch whose site misses in the BTB redirects fetch late and
    pays a bubble even when the direction was right. *)

open Prelude

(** Steady-state misprediction probability of a 2-bit saturating counter
    for a branch taken with probability [p]. *)
let two_bit_mispredict p =
  if p <= 0.0 || p >= 1.0 then 0.0
  else begin
    let rho = p /. (1.0 -. p) in
    let pi0 = 1.0 in
    let pi1 = rho in
    let pi2 = rho *. rho in
    let pi3 = rho *. rho *. rho in
    let z = pi0 +. pi1 +. pi2 +. pi3 in
    (* States 0,1 predict not-taken; 2,3 predict taken. *)
    ((pi0 +. pi1) /. z *. p) +. ((pi2 +. pi3) /. z *. (1.0 -. p))
  end

(** Expected direction mispredictions over a run, from per-site execution
    and taken counts. *)
let direction_mispredictions (sites : (int * int) array) =
  Array.fold_left
    (fun acc (execs, takens) ->
      if execs = 0 then acc
      else begin
        let p = float_of_int takens /. float_of_int execs in
        acc +. (two_bit_mispredict p *. float_of_int execs)
      end)
    0.0 sites

(** Expected BTB misses given the branch-site reuse histogram. *)
let btb_misses (hist : Reuse.histogram) (u : Uarch.Config.t) =
  Reuse.expected_misses hist ~sets:(Uarch.Config.btb_sets u)
    ~ways:u.Uarch.Config.btb_assoc
