(** The eleven performance counters of table 1.

    These are the program/microarchitecture characterisation [c] the model
    is trained on: rates normalised by cycles (usage/access counters) or by
    accesses (miss rates), as produced by a profiling run of the binary on
    the simulated configuration. *)

type t = {
  ipc : float;
  decode_rate : float;  (** Decoder accesses per cycle. *)
  regfile_rate : float;  (** Register-file reads+writes per cycle. *)
  bpred_rate : float;  (** Branch-predictor lookups per cycle. *)
  icache_rate : float;  (** I-cache accesses per cycle. *)
  icache_miss_rate : float;
  dcache_rate : float;  (** D-cache accesses per cycle. *)
  dcache_miss_rate : float;
  alu_usage : float;  (** ALU operations per cycle. *)
  mac_usage : float;  (** Multiply-accumulate operations per cycle. *)
  shift_usage : float;  (** Shifter operations per cycle. *)
}

let names =
  [|
    "IPC"; "dec_acc_rate"; "reg_acc_rate"; "bpred_acc_rate";
    "icache_acc_rate"; "icache_miss_rate"; "dcache_acc_rate";
    "dcache_miss_rate"; "ALU_usg"; "MAC_usg"; "Shft_usg";
  |]

let to_array c =
  [|
    c.ipc; c.decode_rate; c.regfile_rate; c.bpred_rate; c.icache_rate;
    c.icache_miss_rate; c.dcache_rate; c.dcache_miss_rate; c.alu_usage;
    c.mac_usage; c.shift_usage;
  |]

let dim = 11

(** Inverse of {!to_array} — the serving wire protocol carries counter
    vectors in table 1's order.  Raises [Invalid_argument] on a wrong
    length. *)
let of_array a =
  if Array.length a <> dim then
    invalid_arg
      (Printf.sprintf "Counters.of_array: expected %d values, got %d" dim
         (Array.length a));
  {
    ipc = a.(0);
    decode_rate = a.(1);
    regfile_rate = a.(2);
    bpred_rate = a.(3);
    icache_rate = a.(4);
    icache_miss_rate = a.(5);
    dcache_rate = a.(6);
    dcache_miss_rate = a.(7);
    alu_usage = a.(8);
    mac_usage = a.(9);
    shift_usage = a.(10);
  }
