(** First-order in-order pipeline timing model (Karkhanis–Smith style),
    standing in for the cycle-accurate Xtrem simulator the paper used.

    Cycle decomposition for one profiled run on one configuration: issue
    (width-limited by the profile's adjacent-dependence density),
    dependence interlocks (load-use and long-op gaps priced against the
    configuration's actual latencies), cache misses (expected counts from
    the reuse histograms, each costing the off-chip latency in cycles at
    the configuration's frequency) and control (mispredictions, BTB
    misses, fetch redirects).  See DESIGN.md for why a first-order model
    preserves the paper's relevant behaviour. *)

type verdict = {
  cycles : float;
  seconds : float;
  counters : Counters.t;  (** The 11 counters of table 1. *)
  icache : Cache.result;
  dcache : Cache.result;
  mispredicts : float;
  btb_misses : float;
  stall_cycles : float;
}

val mispredict_penalty : float
(** Front-end flush cost of a direction misprediction, in cycles. *)

val evaluate : Ir.Profile.t -> Uarch.Config.t -> verdict
(** Price one profile on one configuration.  Microsecond-scale: the
    trace-once/model-many pivot of the reproduction. *)
