#!/bin/sh
# Full CI gate, in dependency order: build everything, run the unit
# suites, then the end-to-end smokes — bench (sequential and parallel
# engine), trace (JSONL schema round-trip), serve (train -> serve ->
# query -> drain against a real server), index (scan vs VP-tree
# predictions byte-identical through the binary), store (cold -> warm
# incremental rerun with byte-identical artifacts) and cluster
# (multi-process train with chaos and a mid-run worker kill, artifact
# byte-identical to single-process), obs (traced multi-process
# train stitched to zero orphan spans, live Prometheus scrape and
# `top` dashboard, tracing proven artifact-neutral) and registry
# (evidence -> publish -> incremental refit byte-identical to a cold
# retrain -> live serve with A/B -> reload -> promote -> gc), net
# (binary, JSON and mixed clients on one listener, net.loop.*
# instruments in both metrics renderings, drain under live load) and
# pareto (--objective cycles byte-identical to the default, pareto
# fronts through crossval/serve/bench, typed 400 on objective
# mismatch).
# Each stage fails fast; a green run is the tier-1 bar for merging.
#
# Usage: sh scripts/ci.sh   (or `make ci`)
set -eu

stage() {
  echo
  echo "== ci: $* =="
}

stage build
dune build @all

stage unit tests
dune runtest

stage bench-smoke
make bench-smoke

stage trace-smoke
make trace-smoke

stage serve-smoke
make serve-smoke

stage index-smoke
make index-smoke

stage store-smoke
make store-smoke

stage cluster-smoke
make cluster-smoke

stage obs-smoke
make obs-smoke

stage registry-smoke
make registry-smoke

stage net-smoke
make net-smoke

stage pareto-smoke
make pareto-smoke

echo
echo "ci: OK"
