#!/bin/sh
# I/O-core smoke test: one server, both wire formats.  Trains a tiny
# model, serves it, then drives the same listener with binary-framed,
# newline-JSON and mixed concurrent clients — the answers must agree
# (a JSON re-query of a binary-cached program is a cache hit, proving
# the framing never reaches the payload).  Verifies the readiness
# loop's instruments (net.loop.*) surface in both the metrics op and
# the Prometheus rendering, then drains the server while clients are
# still in flight.
#
# Invokes the built binary directly rather than via `dune exec`:
# concurrent `dune exec` processes would contend on the build lock.
set -eu

BIN=_build/default/bin/portopt.exe
DIR=results/net_smoke
SOCK="$DIR/portopt.sock"
MODEL="$DIR/model.pcm"

rm -rf "$DIR"
mkdir -p "$DIR"

echo "net-smoke: training tiny model..."
REPRO_UARCHS=2 REPRO_OPTS=8 "$BIN" train -o "$MODEL" --log-level quiet

"$BIN" serve --model "$MODEL" --socket "$SOCK" --jobs 2 --admin \
  >"$DIR/serve.log" 2>&1 &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null || true' EXIT

i=0
while [ ! -S "$SOCK" ] && [ $i -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
if [ ! -S "$SOCK" ]; then
  echo "net-smoke: server never came up" >&2
  cat "$DIR/serve.log" >&2
  exit 1
fi

echo "net-smoke: binary client..."
"$BIN" query --socket "$SOCK" --wire binary qsort >"$DIR/bin.out" 2>&1
grep -q "predicted passes" "$DIR/bin.out"

echo "net-smoke: json client on the same listener..."
"$BIN" query --socket "$SOCK" --wire json qsort >"$DIR/json.out" 2>&1
grep -q "predicted passes" "$DIR/json.out"
# Same canonical payload under both framings: the JSON re-query must
# hit the cache entry the binary query populated.
grep -q "cache hit" "$DIR/json.out"

echo "net-smoke: mixed concurrent clients..."
"$BIN" query --socket "$SOCK" --wire binary bitcnts >"$DIR/m1.out" 2>&1 &
M1=$!
"$BIN" query --socket "$SOCK" --wire json sha >"$DIR/m2.out" 2>&1 &
M2=$!
"$BIN" query --socket "$SOCK" --wire binary dijkstra >"$DIR/m3.out" 2>&1 &
M3=$!
wait "$M1"
wait "$M2"
wait "$M3"
grep -q "predicted passes" "$DIR/m1.out"
grep -q "predicted passes" "$DIR/m2.out"
grep -q "predicted passes" "$DIR/m3.out"

echo "net-smoke: loop instruments..."
"$BIN" metrics --socket "$SOCK" >"$DIR/metrics.json" 2>&1
grep -q '"net.loop.wakeups"' "$DIR/metrics.json"
grep -q '"net.loop.bytes_in"' "$DIR/metrics.json"
grep -q '"net.loop.bytes_out"' "$DIR/metrics.json"
grep -q '"net.loop.fds"' "$DIR/metrics.json"
"$BIN" metrics --socket "$SOCK" --format prom >"$DIR/metrics.prom" 2>&1
grep -q '^net_loop_wakeups ' "$DIR/metrics.prom"
grep -q '^net_loop_fds ' "$DIR/metrics.prom"

echo "net-smoke: drain under load..."
"$BIN" query --socket "$SOCK" --wire binary crc >"$DIR/d1.out" 2>&1 &
D1=$!
"$BIN" query --socket "$SOCK" --wire json qsort >"$DIR/d2.out" 2>&1 &
D2=$!
"$BIN" query --socket "$SOCK" --shutdown | grep -q '"stopping":true'
wait "$D1" || true
wait "$D2" || true
wait "$SERVER"
trap - EXIT
grep -q "drained, bye" "$DIR/serve.log"
echo "net-smoke: OK"
