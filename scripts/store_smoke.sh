#!/bin/sh
# Evaluation-store smoke test against the real binary: a cold `train
# --store` populates the store, a warm rerun must reproduce the .pcm
# artifact byte for byte, and the store subcommands (stats, verify, gc)
# must maintain it without corrupting readable records.  Also regression
# checks for graceful one-line CLI errors on missing or truncated input
# files.
#
# Invokes the built binary directly rather than via `dune exec`:
# concurrent `dune exec` processes would contend on the build lock.
set -eu

BIN=_build/default/bin/portopt.exe
DIR=results/store_smoke
STORE="$DIR/store"

rm -rf "$DIR"
mkdir -p "$DIR"

# SOURCE_DATE_EPOCH pins the artifact timestamp so cold and warm runs
# can be compared byte for byte.
echo "store-smoke: cold train..."
env REPRO_UARCHS=2 REPRO_OPTS=8 SOURCE_DATE_EPOCH=0 \
  "$BIN" train --store "$STORE" -o "$DIR/cold.pcm" --log-level quiet

echo "store-smoke: warm train (must be incremental and bit-identical)..."
env REPRO_UARCHS=2 REPRO_OPTS=8 SOURCE_DATE_EPOCH=0 \
  "$BIN" train --store "$STORE" -o "$DIR/warm.pcm" --log-level quiet
cmp "$DIR/cold.pcm" "$DIR/warm.pcm"

echo "store-smoke: stats + verify..."
"$BIN" store stats --store "$STORE" | grep -q "entries"
"$BIN" store verify --store "$STORE" | grep -q "errors   0"

echo "store-smoke: gc respects the bound and keeps records readable..."
"$BIN" store gc --store "$STORE" --max-mb 0.1
"$BIN" store verify --store "$STORE" | grep -q "errors   0"

echo "store-smoke: graceful errors..."
# Missing store directory: one-line diagnostic, nonzero exit.
if "$BIN" store verify --store "$DIR/no_such_store" \
  >"$DIR/err1.out" 2>&1; then
  echo "store-smoke: verify of a missing store should fail" >&2
  exit 1
fi
grep -q "no store at" "$DIR/err1.out"
test "$(wc -l <"$DIR/err1.out")" -eq 1

# Missing trace file: report must diagnose, not crash.
if "$BIN" report "$DIR/no_such_trace.jsonl" >"$DIR/err2.out" 2>&1; then
  echo "store-smoke: report of a missing trace should fail" >&2
  exit 1
fi

# Truncated model artifact: predict --model must print one diagnostic
# line and exit nonzero.
head -c 40 "$DIR/cold.pcm" >"$DIR/truncated.pcm"
if "$BIN" predict --model "$DIR/truncated.pcm" qsort \
  >"$DIR/err3.out" 2>&1; then
  echo "store-smoke: predict from a truncated artifact should fail" >&2
  exit 1
fi
grep -qi "truncated" "$DIR/err3.out"
test "$(wc -l <"$DIR/err3.out")" -eq 1

# Empty model artifact.
: >"$DIR/empty.pcm"
if "$BIN" predict --model "$DIR/empty.pcm" qsort >"$DIR/err4.out" 2>&1; then
  echo "store-smoke: predict from an empty artifact should fail" >&2
  exit 1
fi
test "$(wc -l <"$DIR/err4.out")" -eq 1

echo "store-smoke: OK"
