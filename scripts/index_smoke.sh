#!/bin/sh
# Index smoke test: the VP-tree k-nearest-neighbour engine must serve
# exactly the same predictions as the exhaustive scan, through the real
# binary.  Trains a tiny model once, serves it twice (--index scan and
# --index vptree), runs the same single and --batch queries against
# each, and diffs the predicted pass lists.  Timing lines are filtered
# out; everything else must be byte-identical.
#
# Invokes the built binary directly rather than via `dune exec`:
# concurrent `dune exec` processes would contend on the build lock.
set -eu

BIN=_build/default/bin/portopt.exe
DIR=results/index_smoke
MODEL="$DIR/model.pcm"

rm -rf "$DIR"
mkdir -p "$DIR"

echo "index-smoke: training tiny model..."
REPRO_UARCHS=2 REPRO_OPTS=8 "$BIN" train -o "$MODEL" --log-level quiet

for ENGINE in scan vptree; do
  SOCK="$DIR/$ENGINE.sock"
  "$BIN" serve --model "$MODEL" --socket "$SOCK" --jobs 2 --admin \
    --index "$ENGINE" >"$DIR/serve_$ENGINE.log" 2>&1 &
  SERVER=$!
  trap 'kill "$SERVER" 2>/dev/null || true' EXIT

  i=0
  while [ ! -S "$SOCK" ] && [ $i -lt 100 ]; do
    sleep 0.1
    i=$((i + 1))
  done
  if [ ! -S "$SOCK" ]; then
    echo "index-smoke: $ENGINE server never came up" >&2
    cat "$DIR/serve_$ENGINE.log" >&2
    exit 1
  fi

  echo "index-smoke: querying $ENGINE engine..."
  "$BIN" query --socket "$SOCK" --health \
    | grep -q "\"index\":\"$ENGINE\""
  {
    "$BIN" query --socket "$SOCK" qsort
    "$BIN" query --socket "$SOCK" --batch qsort bitcnts susan_e
  } | grep -v "served in" >"$DIR/$ENGINE.out"

  "$BIN" query --socket "$SOCK" --shutdown >/dev/null
  wait "$SERVER"
  trap - EXIT
done

echo "index-smoke: comparing predictions..."
diff -u "$DIR/scan.out" "$DIR/vptree.out"
grep -q "predicted passes" "$DIR/vptree.out"
echo "index-smoke: OK"
