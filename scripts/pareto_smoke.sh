#!/bin/sh
# Multi-objective smoke test against the real binary:
#   - `train --objective cycles` must be byte-identical to a train
#     without the flag (the default path cannot drift);
#   - `train --objective pareto` trains and records the spec in the
#     artifact meta;
#   - `crossval --objective pareto` must expose a non-trivial front
#     (>= 3 non-dominated settings on at least one pair) and emit
#     objective.front trace events that `portopt report` validates;
#   - a server loaded with the pareto model answers queries that pin
#     `--objective pareto` and rejects `--objective cycles` with a
#     typed 400;
#   - `bench pareto` writes a schema-tagged results/BENCH_pareto.json.
#
# Invokes the built binary directly rather than via `dune exec`:
# concurrent `dune exec` processes would contend on the build lock.
set -eu

BIN=_build/default/bin/portopt.exe
BENCH=_build/default/bench/main.exe
DIR=results/pareto_smoke
SOCK="$DIR/portopt.sock"

rm -rf "$DIR"
mkdir -p "$DIR"

echo "pareto-smoke: --objective cycles is byte-identical to the default..."
env REPRO_UARCHS=2 REPRO_OPTS=16 SOURCE_DATE_EPOCH=0 \
  "$BIN" train -o "$DIR/default.pcm" --log-level quiet
env REPRO_UARCHS=2 REPRO_OPTS=16 SOURCE_DATE_EPOCH=0 \
  "$BIN" train --objective cycles -o "$DIR/cycles.pcm" --log-level quiet
cmp "$DIR/default.pcm" "$DIR/cycles.pcm"

echo "pareto-smoke: training pareto model..."
env REPRO_UARCHS=2 REPRO_OPTS=16 SOURCE_DATE_EPOCH=0 \
  "$BIN" train --objective pareto -o "$DIR/pareto.pcm" --log-level quiet
grep -q '"objective":"pareto"' "$DIR/pareto.pcm"
# The spec must change the trained artifact.
if cmp -s "$DIR/default.pcm" "$DIR/pareto.pcm"; then
  echo "pareto-smoke: pareto artifact identical to cycles artifact" >&2
  exit 1
fi

echo "pareto-smoke: crossval --objective pareto (front summary + trace)..."
env REPRO_UARCHS=2 REPRO_OPTS=16 SOURCE_DATE_EPOCH=0 \
  "$BIN" crossval --objective pareto \
  --trace "$DIR/crossval.jsonl" --log-level debug \
  >"$DIR/crossval.out" 2>/dev/null
grep -q "pareto fronts" "$DIR/crossval.out"
# At least one pair must carry a non-trivial (>= 3 settings) front.
NONTRIVIAL=$(sed -n 's/^non-trivial fronts *\([0-9][0-9]*\) pairs.*/\1/p' \
  "$DIR/crossval.out")
if [ -z "$NONTRIVIAL" ] || [ "$NONTRIVIAL" -lt 1 ]; then
  echo "pareto-smoke: no pair with a >= 3-member front" >&2
  cat "$DIR/crossval.out" >&2
  exit 1
fi
# The trace must be schema-valid and carry the per-pair front events.
"$BIN" report "$DIR/crossval.jsonl" >/dev/null
grep -q '"objective.front"' "$DIR/crossval.jsonl"

echo "pareto-smoke: serving the pareto model..."
"$BIN" serve --model "$DIR/pareto.pcm" --socket "$SOCK" --jobs 2 --admin \
  >"$DIR/serve.log" 2>&1 &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null || true' EXIT

i=0
while [ ! -S "$SOCK" ] && [ $i -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
if [ ! -S "$SOCK" ]; then
  echo "pareto-smoke: server never came up" >&2
  cat "$DIR/serve.log" >&2
  exit 1
fi

# Health echoes the training spec in the artifact meta.
"$BIN" query --socket "$SOCK" --health | grep -q '"objective":"pareto"'

# A query that pins the matching objective is answered...
"$BIN" query --socket "$SOCK" --objective pareto qsort \
  >"$DIR/match.out" 2>&1
grep -q "predicted passes" "$DIR/match.out"

# ...and one pinning a different objective gets a typed 400.
if "$BIN" query --socket "$SOCK" --objective cycles qsort \
  >"$DIR/mismatch.out" 2>&1; then
  echo "pareto-smoke: objective mismatch should have failed" >&2
  exit 1
fi
grep -q "server error 400" "$DIR/mismatch.out"
grep -q "objective mismatch" "$DIR/mismatch.out"

# An unpinned query still answers (compatibility default).
"$BIN" query --socket "$SOCK" qsort | grep -q "predicted passes"

"$BIN" query --socket "$SOCK" --shutdown >/dev/null
wait "$SERVER"
trap - EXIT

echo "pareto-smoke: bench pareto writes a schema-tagged summary..."
env REPRO_UARCHS=2 REPRO_OPTS=16 "$BENCH" pareto --log-level quiet \
  >"$DIR/bench.out" 2>&1
grep -q '"schema":"portopt-pareto/1"' results/BENCH_pareto.json
grep -q '"vs_cycles_baseline"' results/BENCH_pareto.json

echo "pareto-smoke: OK"
