#!/bin/sh
# Serving smoke test: train a tiny model artifact, serve it on a
# Unix-domain socket, hit it with concurrent queries, verify the cache
# and health endpoints, then shut down cleanly and check the drain.
#
# Invokes the built binary directly rather than via `dune exec`:
# concurrent `dune exec` processes would contend on the build lock.
set -eu

BIN=_build/default/bin/portopt.exe
DIR=results/serve_smoke
SOCK="$DIR/portopt.sock"
MODEL="$DIR/model.pcm"

rm -rf "$DIR"
mkdir -p "$DIR"

echo "serve-smoke: training tiny model..."
REPRO_UARCHS=2 REPRO_OPTS=8 "$BIN" train -o "$MODEL" --log-level quiet

"$BIN" serve --model "$MODEL" --socket "$SOCK" --jobs 2 --admin \
  >"$DIR/serve.log" 2>&1 &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null || true' EXIT

i=0
while [ ! -S "$SOCK" ] && [ $i -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
if [ ! -S "$SOCK" ]; then
  echo "serve-smoke: server never came up" >&2
  cat "$DIR/serve.log" >&2
  exit 1
fi

echo "serve-smoke: concurrent queries..."
"$BIN" query --socket "$SOCK" qsort >"$DIR/q1.out" 2>&1 &
Q1=$!
"$BIN" query --socket "$SOCK" bitcnts >"$DIR/q2.out" 2>&1 &
Q2=$!
wait "$Q1"
wait "$Q2"
grep -q "predicted passes" "$DIR/q1.out"
grep -q "predicted passes" "$DIR/q2.out"

echo "serve-smoke: cache + health..."
"$BIN" query --socket "$SOCK" qsort | grep -q "cache hit"
"$BIN" query --socket "$SOCK" --health | grep -q '"ok":true'

echo "serve-smoke: graceful shutdown..."
"$BIN" query --socket "$SOCK" --shutdown | grep -q '"stopping":true'
wait "$SERVER"
trap - EXIT
grep -q "drained, bye" "$DIR/serve.log"
echo "serve-smoke: OK"
