#!/bin/sh
# Registry smoke test, end to end against the real binary: collect two
# evidence ledgers, publish v1, refit incrementally to v2 and prove it
# byte-identical to a cold retrain on the union (same content-addressed
# id, same object bytes), serve the registry live with an A/B split and
# a watch thread, hot-reload, promote the candidate, and finally check
# gc's reachability rules (channel pointers and lineage chains survive,
# orphans do not).
#
# Invokes the built binary directly rather than via `dune exec`:
# concurrent `dune exec` processes would contend on the build lock.
set -eu

BIN=_build/default/bin/portopt.exe
DIR=results/registry_smoke
REG="$DIR/registry"
REG2="$DIR/registry_cold"
SOCK="$DIR/portopt.sock"

# Pin artifact/lineage timestamps so reruns are byte-identical too.
export SOURCE_DATE_EPOCH=0

rm -rf "$DIR"
mkdir -p "$DIR"

echo "registry-smoke: collecting evidence ledgers (seeds 42 and 43)..."
REPRO_UARCHS=2 REPRO_OPTS=8 \
  "$BIN" evidence -o "$DIR/e1.jsonl" --log-level quiet
REPRO_UARCHS=2 REPRO_OPTS=8 REPRO_SEED=43 \
  "$BIN" evidence -o "$DIR/e2.jsonl" --log-level quiet

echo "registry-smoke: publish v1 (cold) -> stable..."
"$BIN" registry publish --dir "$REG" --evidence "$DIR/e1.jsonl" \
  --channel stable >"$DIR/pub1.out"
V1=$(sed -n 's/^published \([0-9a-f]*\):.*/\1/p' "$DIR/pub1.out")
grep -q "cold fit" "$DIR/pub1.out"
[ -n "$V1" ]

echo "registry-smoke: refit v2 from fresh evidence -> candidate..."
"$BIN" registry publish --dir "$REG" --evidence "$DIR/e2.jsonl" \
  --parent stable --channel candidate >"$DIR/pub2.out"
V2=$(sed -n 's/^published \([0-9a-f]*\):.*/\1/p' "$DIR/pub2.out")
grep -q "refit from $V1" "$DIR/pub2.out"
[ -n "$V2" ] && [ "$V1" != "$V2" ]

echo "registry-smoke: cold retrain on the union must mint the same id..."
cat "$DIR/e1.jsonl" "$DIR/e2.jsonl" >"$DIR/union.jsonl"
"$BIN" registry publish --dir "$REG2" --evidence "$DIR/union.jsonl" \
  >"$DIR/pub3.out"
V2COLD=$(sed -n 's/^published \([0-9a-f]*\):.*/\1/p' "$DIR/pub3.out")
[ "$V2" = "$V2COLD" ]
cmp "$REG/objects/$V2.pcm" "$REG2/objects/$V2COLD.pcm"

"$BIN" registry list --dir "$REG" | grep -q "parent $V1"
"$BIN" registry resolve --dir "$REG" stable | grep -q "^$V1 "

echo "registry-smoke: serving the registry with A/B and watch..."
"$BIN" serve --registry "$REG" --ab candidate=0.5 --watch 0.2 --admin \
  --socket "$SOCK" --jobs 2 >"$DIR/serve.log" 2>&1 &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null || true' EXIT

i=0
while [ ! -S "$SOCK" ] && [ $i -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
if [ ! -S "$SOCK" ]; then
  echo "registry-smoke: server never came up" >&2
  cat "$DIR/serve.log" >&2
  exit 1
fi

"$BIN" query --socket "$SOCK" --health >"$DIR/health1.out"
grep -q "\"version\":\"$V1\"" "$DIR/health1.out"
grep -q "\"candidate\":{\"version\":\"$V2\"" "$DIR/health1.out"

echo "registry-smoke: A/B-tagged queries..."
"$BIN" query --socket "$SOCK" --batch qsort bitcnts >"$DIR/q1.out"
grep -q "predicted passes" "$DIR/q1.out"
grep -q "arm " "$DIR/q1.out"
# Pointers have not moved: reload must be an effective no-op.
"$BIN" query --socket "$SOCK" --reload | grep -q '"changed":false'

echo "registry-smoke: promoting the candidate..."
"$BIN" promote --dir "$REG" --socket "$SOCK" --force >"$DIR/promote.out"
grep -q "promoted: stable -> $V2" "$DIR/promote.out"
"$BIN" registry resolve --dir "$REG" stable | grep -q "^$V2 "

# The promote nudged a reload (and --watch would catch up anyway): the
# server must now answer health with the promoted version.
i=0
until "$BIN" query --socket "$SOCK" --health | grep -q "\"version\":\"$V2\""; do
  i=$((i + 1))
  if [ $i -ge 50 ]; then
    echo "registry-smoke: server never swapped to $V2" >&2
    exit 1
  fi
  sleep 0.1
done

echo "registry-smoke: gc keeps channels and lineage chains..."
# In the live registry everything is reachable: stable/candidate point
# at v2 and v1 is v2's lineage parent.
"$BIN" registry gc --dir "$REG" | grep -q "^deleted 0, kept 2$"
"$BIN" registry resolve --dir "$REG" "$V1" >/dev/null

# In the cold registry, republishing e1 moves latest onto v1, turning
# the union version into an orphan — exactly what gc must collect.
"$BIN" registry publish --dir "$REG2" --evidence "$DIR/e1.jsonl" \
  >"$DIR/pub4.out"
grep -q "^published $V1:" "$DIR/pub4.out"
"$BIN" registry gc --dir "$REG2" --dry-run | grep -q "^would delete $V2$"
"$BIN" registry resolve --dir "$REG2" "$V2" >/dev/null # dry run deletes nothing
"$BIN" registry gc --dir "$REG2" | grep -q "^deleted $V2$"
if "$BIN" registry resolve --dir "$REG2" "$V2" >/dev/null 2>&1; then
  echo "registry-smoke: orphan still resolvable after gc" >&2
  exit 1
fi
"$BIN" registry resolve --dir "$REG2" "$V1" >/dev/null

echo "registry-smoke: graceful shutdown..."
"$BIN" query --socket "$SOCK" --shutdown | grep -q '"stopping":true'
wait "$SERVER"
trap - EXIT
grep -q "drained, bye" "$DIR/serve.log"
echo "registry-smoke: OK"
