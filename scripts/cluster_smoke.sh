#!/bin/sh
# Cluster smoke test against the real binary: `train --workers N`
# spawns real worker processes over a real socket, and the resulting
# .pcm artifact must be byte-identical to the single-process run — at
# any worker count, under seeded chaos, and with a worker kill -9'd
# mid-run (the coordinator reassigns the dead worker's lease and the
# survivor finishes the job).
#
# Invokes the built binary directly rather than via `dune exec`:
# concurrent `dune exec` processes would contend on the build lock.
set -eu

BIN=_build/default/bin/portopt.exe
DIR=results/cluster_smoke

rm -rf "$DIR"
mkdir -p "$DIR"

# SOURCE_DATE_EPOCH pins the artifact timestamp so runs can be
# compared byte for byte; the tiny scale keeps each leg to seconds.
SCALE="REPRO_UARCHS=2 REPRO_OPTS=6 SOURCE_DATE_EPOCH=0"

echo "cluster-smoke: single-process baseline..."
env $SCALE "$BIN" train -o "$DIR/base.pcm" --log-level quiet

echo "cluster-smoke: 2 workers (must be bit-identical)..."
env $SCALE "$BIN" train --workers 2 -o "$DIR/workers.pcm" --log-level quiet
cmp "$DIR/base.pcm" "$DIR/workers.pcm"

echo "cluster-smoke: 2 workers under chaos (drop/garble/delay)..."
env $SCALE "$BIN" train --workers 2 \
  --chaos "seed=7,drop=0.08,garble=0.08,delay=0.3,max_delay_s=0.02" \
  --lease-timeout 2 -o "$DIR/chaos.pcm" --log-level quiet
cmp "$DIR/base.pcm" "$DIR/chaos.pcm"

echo "cluster-smoke: kill -9 one of 2 workers mid-run..."
# Chaos delay slows the workers enough that the run is still in flight
# when the kill lands; the lease timeout keeps recovery prompt.
env $SCALE "$BIN" train --workers 2 \
  --chaos "seed=3,delay=1,max_delay_s=0.05" --lease-timeout 2 \
  -o "$DIR/killed.pcm" --log-level quiet &
TRAIN=$!
sleep 2.5
# Workers are direct children of the train process.
VICTIM=$(pgrep -P "$TRAIN" | head -1 || true)
if [ -n "$VICTIM" ]; then
  echo "cluster-smoke: killing worker pid $VICTIM"
  kill -9 "$VICTIM" 2>/dev/null || true
else
  echo "cluster-smoke: run finished before the kill; still checking output"
fi
wait "$TRAIN"
cmp "$DIR/base.pcm" "$DIR/killed.pcm"

echo "cluster-smoke: worker with nobody to talk to gives up cleanly..."
set +e
"$BIN" worker --connect 127.0.0.1:1 --name smoke-orphan \
  >"$DIR/orphan.out" 2>&1
STATUS=$?
set -e
if [ "$STATUS" -eq 0 ]; then
  echo "cluster-smoke: orphan worker should exit nonzero" >&2
  exit 1
fi
grep -qi "lost" "$DIR/orphan.out"

echo "cluster-smoke: OK"
