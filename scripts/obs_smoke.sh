#!/bin/sh
# Observability smoke test: the telemetry plane end to end against the
# real binary.
#
# 1. A traced `train --workers 2` — the coordinator traces itself and
#    spawns workers tracing sibling files under its trace id; the
#    multi-file `report` must stitch them into one causal tree with
#    ZERO orphan spans, and tracing must not change the artifact
#    (byte-identical to an untraced run).
# 2. A traced serve + query burst — client span contexts propagate
#    through requests; `portopt metrics --format prom` must expose a
#    valid Prometheus scrape with the request-latency histogram and
#    its quantile family, and `portopt top --count 2` must render the
#    dashboard without a terminal.
#
# Invokes the built binary directly rather than via `dune exec`:
# concurrent `dune exec` processes would contend on the build lock.
set -eu

BIN=_build/default/bin/portopt.exe
DIR=results/obs_smoke
SOCK="$DIR/portopt.sock"
MODEL="$DIR/model.pcm"

rm -rf "$DIR"
mkdir -p "$DIR"

SCALE="REPRO_UARCHS=2 REPRO_OPTS=6 SOURCE_DATE_EPOCH=0"

echo "obs-smoke: untraced baseline artifact..."
env $SCALE "$BIN" train -o "$DIR/base.pcm" --log-level quiet

# Default (info) log level: `quiet` also silences info-level spans, and
# the point here is a coordinator trace the workers can stitch under.
echo "obs-smoke: traced train --workers 2..."
env $SCALE "$BIN" train --workers 2 -o "$MODEL" \
  --trace "$DIR/train.jsonl" >"$DIR/train.log" 2>&1

echo "obs-smoke: tracing must not change the artifact..."
cmp "$DIR/base.pcm" "$MODEL"

echo "obs-smoke: worker traces written under the parent's id..."
ls "$DIR"/train.worker-*.jsonl >/dev/null

echo "obs-smoke: stitched report with zero orphan spans..."
"$BIN" report "$DIR/train.jsonl" "$DIR"/train.worker-*.jsonl \
  >"$DIR/stitch.out"
grep -q "^orphan spans: 0$" "$DIR/stitch.out"
# The tree must actually join across processes: the coordinator's
# evaluation span present, and worker lease spans stitched under it
# (indented, not at the left margin as roots).
grep -q "cluster.evaluate @" "$DIR/stitch.out"
grep -q "cluster.lease @" "$DIR/stitch.out"
! grep -Eq "^      [0-9]+\.[0-9]+ \[[^]]*\] cluster.lease" "$DIR/stitch.out" \
  || { echo "obs-smoke: lease spans are roots — context not propagated" >&2
       exit 1; }
# One trace id across all files — no multi-run warning.
! grep -q "distinct trace ids" "$DIR/stitch.out"

echo "obs-smoke: traced serve + query burst..."
"$BIN" serve --model "$MODEL" --socket "$SOCK" --jobs 2 --admin \
  --trace "$DIR/serve.jsonl" >"$DIR/serve.log" 2>&1 &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null || true' EXIT

i=0
while [ ! -S "$SOCK" ] && [ $i -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
if [ ! -S "$SOCK" ]; then
  echo "obs-smoke: server never came up" >&2
  cat "$DIR/serve.log" >&2
  exit 1
fi

env $SCALE "$BIN" query --socket "$SOCK" qsort \
  --trace "$DIR/query.jsonl" >"$DIR/q1.out" 2>&1
env $SCALE "$BIN" query --socket "$SOCK" qsort >/dev/null 2>&1
env $SCALE "$BIN" query --socket "$SOCK" bitcnts >/dev/null 2>&1
grep -q "predicted passes" "$DIR/q1.out"

echo "obs-smoke: prometheus scrape..."
"$BIN" metrics --socket "$SOCK" --format prom >"$DIR/scrape.txt"
grep -q "^# TYPE serve_requests counter$" "$DIR/scrape.txt"
grep -q "^# TYPE serve_request_seconds histogram$" "$DIR/scrape.txt"
grep -q 'serve_request_seconds_bucket{le="+Inf"}' "$DIR/scrape.txt"
grep -q "^serve_request_seconds_count " "$DIR/scrape.txt"
grep -q 'serve_request_seconds_quantile{quantile="0.99"}' "$DIR/scrape.txt"

echo "obs-smoke: json snapshot..."
"$BIN" metrics --socket "$SOCK" --format json | grep -q '"serve.request.seconds"'

echo "obs-smoke: top dashboard (2 polls, no tty)..."
"$BIN" top --socket "$SOCK" --interval 0.2 --count 2 >"$DIR/top.out"
grep -q "portopt top" "$DIR/top.out"
grep -q "req/s" "$DIR/top.out"
grep -q "(lifetime)" "$DIR/top.out"
grep -q "(window)" "$DIR/top.out"

echo "obs-smoke: drain and stitch client into the server trace..."
"$BIN" query --socket "$SOCK" --shutdown >/dev/null
wait "$SERVER"
trap - EXIT

"$BIN" report "$DIR/serve.jsonl" "$DIR/query.jsonl" >"$DIR/stitch2.out"
grep -q "^orphan spans: 0$" "$DIR/stitch2.out"

echo "obs-smoke: OK"
