(* Tests for the simulator: branch models, cache adapters, the pipeline
   timing model and the Xtrem top level. *)

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

let crc_run =
  lazy
    (Sim.Xtrem.profile_of ~setting:Passes.Flags.o3
       (Workloads.Mibench.program_of (Workloads.Mibench.by_name "crc")))

(* ---- Branch models ---------------------------------------------------- *)

let test_two_bit_extremes () =
  checkf "never taken" 0.0 (Sim.Branch.two_bit_mispredict 0.0);
  checkf "always taken" 0.0 (Sim.Branch.two_bit_mispredict 1.0);
  let m = Sim.Branch.two_bit_mispredict 0.5 in
  check Alcotest.bool "50/50 mispredicts half" true (Float.abs (m -. 0.5) < 1e-9)

let test_two_bit_biased_better_than_one_bit () =
  (* At 90% taken a 2-bit counter should beat the 2p(1-p) of a 1-bit
     predictor. *)
  let p = 0.9 in
  let two = Sim.Branch.two_bit_mispredict p in
  let one = 2.0 *. p *. (1.0 -. p) in
  check Alcotest.bool "2-bit better" true (two < one);
  check Alcotest.bool "worse than perfect" true (two > 0.0)

let test_two_bit_symmetry () =
  checkf "symmetric" (Sim.Branch.two_bit_mispredict 0.3)
    (Sim.Branch.two_bit_mispredict 0.7)

let test_direction_mispredictions_counts () =
  let sites = [| (100, 100); (100, 0); (100, 50) |] in
  let m = Sim.Branch.direction_mispredictions sites in
  (* Only the 50/50 site mispredicts: ~50 events. *)
  check Alcotest.bool "about 50" true (Float.abs (m -. 50.0) < 1.0)

let test_btb_fewer_misses_with_more_entries () =
  let p = (Lazy.force crc_run).Sim.Xtrem.profile in
  let small =
    Sim.Branch.btb_misses p.Ir.Profile.btb_hist
      { Uarch.Config.xscale with Uarch.Config.btb_entries = 128 }
  in
  let large =
    Sim.Branch.btb_misses p.Ir.Profile.btb_hist
      { Uarch.Config.xscale with Uarch.Config.btb_entries = 2048 }
  in
  check Alcotest.bool "monotone" true (large <= small)

(* ---- Cache adapters --------------------------------------------------- *)

let test_dcache_monotone_in_size () =
  let p = (Lazy.force crc_run).Sim.Xtrem.profile in
  let prev = ref infinity in
  Array.iter
    (fun size ->
      let r =
        Sim.Cache.dcache p { Uarch.Config.xscale with Uarch.Config.dl1_size = size }
      in
      if r.Sim.Cache.misses > !prev +. 1e-6 then
        Alcotest.failf "misses increased at %d" size;
      prev := r.Sim.Cache.misses)
    Uarch.Config.il1_sizes

let test_icache_accesses_equal_instructions () =
  let run = Lazy.force crc_run in
  let p = run.Sim.Xtrem.profile in
  let r = Sim.Cache.icache p Uarch.Config.xscale in
  checkf "one access per instruction"
    (float_of_int p.Ir.Profile.dyn_insts)
    r.Sim.Cache.accesses

(* ---- Pipeline --------------------------------------------------------- *)

let test_cycles_bounded_below_by_instructions () =
  let run = Lazy.force crc_run in
  let v = Sim.Xtrem.time run Uarch.Config.xscale in
  check Alcotest.bool "at least one cycle per instruction" true
    (v.Sim.Pipeline.cycles
    >= float_of_int run.Sim.Xtrem.profile.Ir.Profile.dyn_insts)

let test_ipc_at_most_width () =
  let run = Lazy.force crc_run in
  let v1 = Sim.Xtrem.time run Uarch.Config.xscale in
  check Alcotest.bool "ipc <= 1" true
    (v1.Sim.Pipeline.counters.Sim.Counters.ipc <= 1.0);
  let v2 =
    Sim.Xtrem.time run { Uarch.Config.xscale with Uarch.Config.issue_width = 2 }
  in
  check Alcotest.bool "ipc <= 2" true
    (v2.Sim.Pipeline.counters.Sim.Counters.ipc <= 2.0);
  check Alcotest.bool "dual issue at least as fast" true
    (v2.Sim.Pipeline.cycles <= v1.Sim.Pipeline.cycles)

let test_frequency_tradeoff () =
  (* Higher frequency: fewer seconds overall, more cycles (misses cost
     more of them). *)
  let run = Lazy.force crc_run in
  let v400 = Sim.Xtrem.time run Uarch.Config.xscale in
  let v600 =
    Sim.Xtrem.time run { Uarch.Config.xscale with Uarch.Config.freq_mhz = 600 }
  in
  check Alcotest.bool "more cycles at 600MHz" true
    (v600.Sim.Pipeline.cycles >= v400.Sim.Pipeline.cycles);
  check Alcotest.bool "less time at 600MHz" true
    (v600.Sim.Pipeline.seconds < v400.Sim.Pipeline.seconds)

let test_counters_consistency () =
  let run = Lazy.force crc_run in
  let v = Sim.Xtrem.time run Uarch.Config.xscale in
  let c = v.Sim.Pipeline.counters in
  check Alcotest.int "11 counters" 11 (Array.length (Sim.Counters.to_array c));
  check Alcotest.bool "miss rates within [0,1]" true
    (c.Sim.Counters.icache_miss_rate >= 0.0
    && c.Sim.Counters.icache_miss_rate <= 1.0
    && c.Sim.Counters.dcache_miss_rate >= 0.0
    && c.Sim.Counters.dcache_miss_rate <= 1.0);
  checkf "decode rate equals ipc" c.Sim.Counters.ipc c.Sim.Counters.decode_rate

let test_small_icache_hurts_big_code () =
  (* rijndael_e's hot loop exceeds a 4K I-cache at -O3: the miss rate and
     cycles must rise sharply relative to the XScale's 32K. *)
  let run =
    Sim.Xtrem.profile_of ~setting:Passes.Flags.o3
      (Workloads.Mibench.program_of (Workloads.Mibench.by_name "rijndael_e"))
  in
  let base = Sim.Xtrem.time run Uarch.Config.xscale in
  let small =
    Sim.Xtrem.time run
      { Uarch.Config.xscale with Uarch.Config.il1_size = 4096; il1_assoc = 4 }
  in
  check Alcotest.bool "thrash costs at least 1.5x" true
    (small.Sim.Pipeline.cycles > 1.5 *. base.Sim.Pipeline.cycles)

let test_stalls_respond_to_load_latency () =
  let run = Lazy.force crc_run in
  let fast = Sim.Xtrem.time run Uarch.Config.xscale in
  (* A large high-associativity D-cache has a longer hit latency. *)
  let slow =
    Sim.Xtrem.time run
      { Uarch.Config.xscale with Uarch.Config.dl1_size = 131072; dl1_assoc = 64 }
  in
  check Alcotest.bool "more stalls with slower hits" true
    (slow.Sim.Pipeline.stall_cycles >= fast.Sim.Pipeline.stall_cycles)

let test_energy_positive_and_scales () =
  let run = Lazy.force crc_run in
  let small = Sim.Xtrem.energy_mj run Uarch.Config.xscale in
  let big =
    Sim.Xtrem.energy_mj run
      { Uarch.Config.xscale with Uarch.Config.il1_size = 131072;
        dl1_size = 131072 }
  in
  check Alcotest.bool "positive" true (small > 0.0);
  check Alcotest.bool "bigger caches burn more" true (big > small)

let test_deterministic_verdicts () =
  let run = Lazy.force crc_run in
  let a = Sim.Xtrem.time run Uarch.Config.xscale in
  let b = Sim.Xtrem.time run Uarch.Config.xscale in
  checkf "deterministic" a.Sim.Pipeline.cycles b.Sim.Pipeline.cycles


(* ---- Exact cache simulation (validation reference) -------------------- *)

let test_cache_sim_fully_assoc_matches_naive () =
  let rng = Prelude.Rng.create 21 in
  for _ = 1 to 20 do
    let trace = Array.init 300 (fun _ -> Prelude.Rng.int rng 40 * 8) in
    let capacity = 1 + Prelude.Rng.int rng 12 in
    let t = Sim.Cache_sim.run ~sets:1 ~ways:capacity ~block_bytes:8 trace in
    let blocks = Array.map (fun a -> a / 8) trace in
    let expected = Testsupport.Naive.lru_misses ~capacity blocks in
    check Alcotest.int "exact LRU" expected t.Sim.Cache_sim.misses
  done

let test_cache_sim_set_mapping () =
  (* Two blocks mapping to different sets never evict each other. *)
  let t = Sim.Cache_sim.create ~sets:2 ~ways:1 ~block_bytes:8 in
  Sim.Cache_sim.access t 0;   (* set 0 *)
  Sim.Cache_sim.access t 8;   (* set 1 *)
  Sim.Cache_sim.access t 0;
  Sim.Cache_sim.access t 8;
  check Alcotest.int "only cold misses" 2 t.Sim.Cache_sim.misses

let test_analytic_model_close_to_exact () =
  let program =
    Passes.Driver.compile ~setting:Passes.Flags.o3
      (Workloads.Mibench.program_of (Workloads.Mibench.by_name "crc"))
  in
  List.iter
    (fun u ->
      let exact, model, accesses = Sim.Cache_sim.validate_dcache program u in
      let err =
        Float.abs (model -. float_of_int exact) /. float_of_int (max 1 accesses)
      in
      if err > 0.05 then
        Alcotest.failf "analytic model off by %.3f miss rate" err)
    [
      Uarch.Config.xscale;
      { Uarch.Config.xscale with Uarch.Config.dl1_size = 4096; dl1_assoc = 4 };
    ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "sim"
    [
      ( "branch",
        [
          quick "two-bit extremes" test_two_bit_extremes;
          quick "two-bit vs one-bit" test_two_bit_biased_better_than_one_bit;
          quick "two-bit symmetry" test_two_bit_symmetry;
          quick "direction counts" test_direction_mispredictions_counts;
          quick "btb monotone" test_btb_fewer_misses_with_more_entries;
        ] );
      ( "cache",
        [
          quick "dcache monotone in size" test_dcache_monotone_in_size;
          quick "icache access count" test_icache_accesses_equal_instructions;
        ] );
      ( "exact simulation",
        [
          quick "fully-assoc matches naive LRU" test_cache_sim_fully_assoc_matches_naive;
          quick "set mapping" test_cache_sim_set_mapping;
          quick "analytic close to exact" test_analytic_model_close_to_exact;
        ] );
      ( "pipeline",
        [
          quick "cycles lower bound" test_cycles_bounded_below_by_instructions;
          quick "ipc bounded by width" test_ipc_at_most_width;
          quick "frequency trade-off" test_frequency_tradeoff;
          quick "counters consistent" test_counters_consistency;
          quick "small icache thrash" test_small_icache_hurts_big_code;
          quick "load latency stalls" test_stalls_respond_to_load_latency;
          quick "energy model" test_energy_positive_and_scales;
          quick "deterministic" test_deterministic_verdicts;
        ] );
    ]
