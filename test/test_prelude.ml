(* Tests for the prelude: RNG, Fenwick tree, reuse-distance analysis,
   statistics, vectors, text rendering and the int buffer. *)

open Prelude

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let checkf_loose msg = Alcotest.check (Alcotest.float 1e-6) msg

(* ---- Rng ------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_rng_split_independent () =
  let a = Rng.create 3 in
  let b = Rng.split a in
  let xs = Array.init 50 (fun _ -> Rng.int a 1000) in
  let ys = Array.init 50 (fun _ -> Rng.int b 1000) in
  if xs = ys then Alcotest.fail "split streams identical"

let test_rng_float_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 1.0 in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "float out of range: %f" v
  done

let test_sample_without_replacement () =
  let rng = Rng.create 5 in
  let picks = Rng.sample_without_replacement rng 1000 100 in
  check Alcotest.int "count" 100 (Array.length picks);
  let seen = Hashtbl.create 128 in
  Array.iter
    (fun p ->
      if p < 0 || p >= 1000 then Alcotest.failf "out of range: %d" p;
      if Hashtbl.mem seen p then Alcotest.failf "duplicate: %d" p;
      Hashtbl.add seen p ())
    picks

let test_sample_full_population () =
  let rng = Rng.create 6 in
  let picks = Rng.sample_without_replacement rng 10 10 in
  let sorted = Array.copy picks in
  Array.sort compare sorted;
  check
    Alcotest.(array int)
    "permutation" (Array.init 10 Fun.id) sorted

let test_shuffle_permutation () =
  let rng = Rng.create 8 in
  let a = Array.init 30 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 30 Fun.id) sorted

let test_rng_chi_square_uniform () =
  (* Pearson chi-square against uniformity for the rejection-sampled
     [Rng.int].  bound = 13 is coprime with the 62-bit draw range, the
     case where plain [mod] would be biased.  df = 12; the 0.001
     critical value is 32.9, so 40 gives slack while still failing for
     any real bias (deterministic seed, so no flakiness either way). *)
  let bound = 13 in
  let n = 130_000 in
  let rng = Rng.create 2024 in
  let counts = Array.make bound 0 in
  for _ = 1 to n do
    let v = Rng.int rng bound in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = float_of_int n /. float_of_int bound in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 counts
  in
  if chi2 > 40.0 then Alcotest.failf "chi-square too high: %f" chi2

let test_rng_int_huge_bound () =
  (* Near the top of the representable range the rejection path is
     actually reachable; values must still be in bounds. *)
  let rng = Rng.create 13 in
  for _ = 1 to 1_000 do
    let v = Rng.int rng max_int in
    if v < 0 then Alcotest.failf "negative draw: %d" v
  done

let test_gaussian_moments () =
  let rng = Rng.create 10 in
  let xs = Array.init 20_000 (fun _ -> Rng.gaussian rng) in
  let m = Stats.mean xs and s = Stats.std xs in
  if Float.abs m > 0.05 then Alcotest.failf "gaussian mean %f" m;
  if Float.abs (s -. 1.0) > 0.05 then Alcotest.failf "gaussian std %f" s

(* ---- Pool ----------------------------------------------------------- *)

let with_pool jobs f =
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_pool_matches_sequential () =
  with_pool 4 (fun pool ->
      let f i = (i * i) + 1 in
      check
        Alcotest.(array int)
        "init preserves index order" (Array.init 100 f) (Pool.init pool 100 f);
      let xs = Array.init 37 string_of_int in
      check
        Alcotest.(array string)
        "map preserves order"
        (Array.map (fun s -> s ^ "!") xs)
        (Pool.map pool (fun s -> s ^ "!") xs))

let test_pool_sequential_size_one () =
  with_pool 1 (fun pool ->
      check Alcotest.int "size" 1 (Pool.size pool);
      check
        Alcotest.(array int)
        "jobs=1 inline" (Array.init 10 succ) (Pool.init pool 10 succ))

let test_pool_empty_and_reuse () =
  with_pool 3 (fun pool ->
      check Alcotest.(array int) "empty" [||] (Pool.init pool 0 Fun.id);
      (* Several batches through the same fixed pool. *)
      for n = 1 to 20 do
        check
          Alcotest.(array int)
          "batch" (Array.init n Fun.id) (Pool.init pool n Fun.id)
      done)

let test_pool_exception_lowest_index () =
  with_pool 4 (fun pool ->
      Alcotest.check_raises "first failing index wins" (Failure "task 3")
        (fun () ->
          ignore
            (Pool.init pool 64 (fun i ->
                 if i >= 3 then failwith (Printf.sprintf "task %d" i);
                 i))))

let test_pool_nested_use_rejected () =
  with_pool 2 (fun pool ->
      Alcotest.check_raises "nested init refused"
        (Invalid_argument "Pool.init: nested use of a fixed-size pool")
        (fun () ->
          ignore
            (Pool.init pool 2 (fun _ -> ignore (Pool.init pool 2 Fun.id)))))

let test_pool_parallel_work_is_deterministic () =
  (* Same work, three pool widths: bit-identical float results. *)
  let f i =
    let rng = Rng.create i in
    let acc = ref 0.0 in
    for _ = 1 to 500 do
      acc := !acc +. Rng.float rng 1.0
    done;
    !acc
  in
  let reference = Array.init 50 f in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          let got = Pool.init pool 50 f in
          if got <> reference then
            Alcotest.failf "results differ at jobs=%d" jobs))
    [ 1; 2; 4 ]

let test_pool_submit_after_shutdown_raises () =
  let pool = Pool.create ~jobs:2 in
  let ran = Atomic.make false in
  Pool.submit pool (fun () -> Atomic.set ran true);
  Pool.shutdown pool;
  (* Work accepted before shutdown always executes... *)
  check Alcotest.bool "queued task ran" true (Atomic.get ran);
  (* ...but a drained pool refuses new work loudly. *)
  Alcotest.check_raises "submit after shutdown" Pool.Closed (fun () ->
      Pool.submit pool (fun () -> ()));
  (* And keeps refusing: Closed is a permanent state, not a race. *)
  Alcotest.check_raises "still closed" Pool.Closed (fun () ->
      Pool.submit pool (fun () -> ()))

let test_pool_shutdown_drains_queue () =
  (* Saturate a tiny pool with slow tasks so some are still queued when
     shutdown runs: they must execute inline before shutdown returns. *)
  let pool = Pool.create ~jobs:2 in
  let hits = Atomic.make 0 in
  for _ = 1 to 30 do
    Pool.submit pool (fun () ->
        Thread.delay 0.005;
        Atomic.incr hits)
  done;
  Pool.shutdown pool;
  check Alcotest.int "every accepted task ran" 30 (Atomic.get hits);
  check Alcotest.int "nothing left queued" 0 (Pool.pending pool)

(* ---- Backoff -------------------------------------------------------- *)

let policy ?(base_s = 0.1) ?(factor = 2.0) ?(max_s = 1.0) ?(jitter = 0.0)
    ?(max_retries = 4) () =
  { Backoff.base_s; factor; max_s; jitter; max_retries }

let test_backoff_validate () =
  Backoff.validate Backoff.default;
  List.iter
    (fun p ->
      match Backoff.validate p with
      | () -> Alcotest.fail "accepted an invalid policy"
      | exception Invalid_argument _ -> ())
    [
      policy ~base_s:0.0 ();
      policy ~factor:0.0 ();
      policy ~jitter:1.5 ();
      policy ~jitter:(-0.1) ();
      policy ~max_retries:(-1) ();
    ]

let test_backoff_delay_schedule () =
  (* Without jitter the schedule is exactly base * factor^attempt,
     capped at max_s. *)
  let p = policy () in
  let rng = Rng.create 1 in
  check (Alcotest.float 1e-9) "attempt 0" 0.1 (Backoff.delay p ~rng ~attempt:0);
  check (Alcotest.float 1e-9) "attempt 1" 0.2 (Backoff.delay p ~rng ~attempt:1);
  check (Alcotest.float 1e-9) "attempt 2" 0.4 (Backoff.delay p ~rng ~attempt:2);
  check (Alcotest.float 1e-9) "capped" 1.0 (Backoff.delay p ~rng ~attempt:9)

let test_backoff_jitter_bounded_and_deterministic () =
  let p = policy ~jitter:0.5 () in
  let play seed =
    let rng = Rng.create seed in
    List.init 100 (fun i -> Backoff.delay p ~rng ~attempt:(i mod 5))
  in
  List.iteri
    (fun i d ->
      let attempt = i mod 5 in
      let base = Float.min (0.1 *. (2.0 ** float_of_int attempt)) 1.0 in
      if d < 0.0 then Alcotest.failf "negative delay %f" d;
      if d > 1.0 +. 1e-9 then Alcotest.failf "delay %f above max_s" d;
      if Float.abs (d -. base) > (0.5 *. base) +. 1e-9 then
        Alcotest.failf "delay %f outside jitter band of %f" d base)
    (play 7);
  check Alcotest.bool "same seed, same delays" true (play 7 = play 7);
  check Alcotest.bool "different seed, different delays" true
    (play 7 <> play 8)

let test_backoff_retry_counts_attempts () =
  let p = policy ~base_s:0.001 ~max_s:0.002 ~max_retries:3 () in
  let rng = Rng.create 2 in
  let slept = ref [] in
  let sleep d = slept := d :: !slept in
  (* Exhausting the budget: initial attempt + max_retries retries. *)
  let calls = ref 0 in
  (match
     Backoff.retry p ~rng ~sleep (fun ~attempt ->
         check Alcotest.int "attempt number" !calls attempt;
         incr calls;
         Error "nope")
   with
  | Ok () -> Alcotest.fail "cannot succeed"
  | Error e -> check Alcotest.string "last error" "nope" e);
  check Alcotest.int "initial + retries" 4 !calls;
  check Alcotest.int "one sleep per retry" 3 (List.length !slept);
  (* Success stops the retries immediately. *)
  let calls = ref 0 in
  (match
     Backoff.retry p ~rng ~sleep (fun ~attempt:_ ->
         incr calls;
         if !calls < 3 then Error "transient" else Ok "done")
   with
  | Ok v -> check Alcotest.string "value" "done" v
  | Error _ -> Alcotest.fail "should have succeeded");
  check Alcotest.int "stopped on success" 3 !calls;
  (* A non-retryable error returns without sleeping again. *)
  let calls = ref 0 in
  (match
     Backoff.retry p ~rng ~sleep
       ~retryable:(fun e -> e <> `Fatal)
       (fun ~attempt:_ ->
         incr calls;
         Error `Fatal)
   with
  | Ok _ -> Alcotest.fail "cannot succeed"
  | Error `Fatal -> ());
  check Alcotest.int "fatal error not retried" 1 !calls

(* ---- Fenwick -------------------------------------------------------- *)

let test_fenwick_against_naive () =
  let rng = Rng.create 11 in
  let n = 200 in
  let reference = Array.make n 0 in
  let fen = Fenwick.create n in
  for _ = 1 to 500 do
    let i = Rng.int rng n in
    let delta = Rng.int rng 10 - 5 in
    reference.(i) <- reference.(i) + delta;
    Fenwick.add fen i delta
  done;
  for i = 0 to n - 1 do
    let expected = Array.fold_left ( + ) 0 (Array.sub reference 0 (i + 1)) in
    check Alcotest.int "prefix" expected (Fenwick.prefix_sum fen i)
  done;
  check Alcotest.int "total" (Array.fold_left ( + ) 0 reference)
    (Fenwick.total fen)

let test_fenwick_range () =
  let fen = Fenwick.create 10 in
  Fenwick.add fen 3 5;
  Fenwick.add fen 7 2;
  check Alcotest.int "range" 7 (Fenwick.range_sum fen 0 9);
  check Alcotest.int "range" 5 (Fenwick.range_sum fen 3 3);
  check Alcotest.int "range" 0 (Fenwick.range_sum fen 4 6);
  check Alcotest.int "empty" 0 (Fenwick.range_sum fen 5 4)

(* ---- Reuse ---------------------------------------------------------- *)

let qcheck_trace =
  QCheck.make
    ~print:(fun t -> String.concat "," (List.map string_of_int (Array.to_list t)))
    (QCheck.Gen.map Array.of_list
       QCheck.Gen.(list_size (int_range 1 120) (int_range 0 20)))

let prop_histogram_matches_naive =
  QCheck.Test.make ~name:"reuse histogram matches naive stack distances"
    ~count:200 qcheck_trace (fun trace ->
      let h = Reuse.histogram_of_blocks trace in
      let naive = Testsupport.Naive.stack_distances trace in
      let cold = Array.fold_left (fun a d -> if d < 0 then a + 1 else a) 0 naive in
      let total_entries =
        Array.fold_left (fun a (_, c) -> a + c) 0 h.Reuse.entries
      in
      h.Reuse.cold = cold
      && h.Reuse.total = Array.length trace
      && total_entries + cold = Array.length trace)

let prop_fully_assoc_matches_lru =
  QCheck.Test.make
    ~name:"sets=1 miss count equals a real LRU simulation" ~count:200
    (QCheck.pair qcheck_trace (QCheck.int_range 1 16))
    (fun (trace, capacity) ->
      (* Distances below the quantisation threshold are exact, which holds
         for these small traces. *)
      let h = Reuse.histogram_of_blocks trace in
      let expected = Testsupport.Naive.lru_misses ~capacity trace in
      let got = Reuse.expected_misses h ~sets:1 ~ways:capacity in
      Float.abs (got -. float_of_int expected) < 1e-6)

let test_binomial_tail_against_naive () =
  List.iter
    (fun (n, p, k) ->
      checkf_loose
        (Printf.sprintf "tail n=%d p=%f k=%d" n p k)
        (Testsupport.Naive.binomial_tail_ge ~n ~p ~k)
        (Reuse.binomial_tail_ge ~n ~p ~k))
    [
      (10, 0.5, 3); (10, 0.1, 1); (50, 0.03125, 4); (200, 0.125, 8);
      (5, 0.9, 5); (1, 0.5, 1);
    ]

let test_binomial_tail_edges () =
  checkf "k=0" 1.0 (Reuse.binomial_tail_ge ~n:10 ~p:0.3 ~k:0);
  checkf "k>n" 0.0 (Reuse.binomial_tail_ge ~n:5 ~p:0.3 ~k:6);
  checkf "p=0" 0.0 (Reuse.binomial_tail_ge ~n:5 ~p:0.0 ~k:1);
  checkf "huge n" 1.0 (Reuse.binomial_tail_ge ~n:1_000_000 ~p:0.25 ~k:4)

let test_capacity_model_monotone () =
  let rng = Rng.create 12 in
  let trace = Array.init 2000 (fun _ -> Rng.int rng 300) in
  let h = Reuse.histogram_of_blocks trace in
  let prev = ref infinity in
  List.iter
    (fun cap ->
      let m = Reuse.miss_fraction_capacity h ~capacity_blocks:cap ~ways:4 in
      if m > !prev +. 1e-9 then
        Alcotest.failf "miss fraction not monotone at capacity %d" cap;
      prev := m)
    [ 8; 16; 32; 64; 128; 256; 512 ]

let test_capacity_model_loop_cliff () =
  (* A loop over F blocks: fits when capacity is comfortably above F,
     thrashes when it is below. *)
  let f = 100 in
  let trace = Array.init (f * 20) (fun i -> i mod f) in
  let h = Reuse.histogram_of_blocks trace in
  let fits = Reuse.miss_fraction_capacity h ~capacity_blocks:(2 * f) ~ways:32 in
  let thrash = Reuse.miss_fraction_capacity h ~capacity_blocks:(f / 2) ~ways:32 in
  if fits > 0.1 then Alcotest.failf "loop should fit: %f" fits;
  if thrash < 0.9 then Alcotest.failf "loop should thrash: %f" thrash

let test_merge_histograms () =
  let a = Reuse.histogram_of_blocks [| 1; 2; 1 |] in
  let b = Reuse.histogram_of_blocks [| 3; 3 |] in
  let m = Reuse.merge a b in
  check Alcotest.int "total" 5 m.Reuse.total;
  check Alcotest.int "cold" 3 m.Reuse.cold

(* Entries leave compact/merge sorted strictly ascending by distance:
   the miss models fold over them assuming each bucket appears once,
   and the analytic-vs-simulation comparisons assume a canonical
   order.  (The sort key is the int distance — hashtable keys, hence
   unique — under an explicit Int.compare.) *)
let check_entries_strictly_increasing what (h : Reuse.histogram) =
  Array.iteri
    (fun i (d, c) ->
      if c <= 0 then Alcotest.failf "%s: empty bucket at distance %d" what d;
      if i > 0 && d <= fst h.Reuse.entries.(i - 1) then
        Alcotest.failf "%s: entries not strictly increasing at %d" what i)
    h.Reuse.entries

let test_entries_sorted_and_unique () =
  let rng = Rng.create 31 in
  for trial = 1 to 20 do
    (* Wide-ranging distances so both the exact range and several
       geometric buckets are hit. *)
    let trace = Array.init 3000 (fun _ -> Rng.int rng 700) in
    let h = Reuse.histogram_of_blocks trace in
    check_entries_strictly_increasing
      (Printf.sprintf "trial %d, histogram" trial)
      h;
    let other =
      Reuse.histogram_of_blocks (Array.init 500 (fun _ -> Rng.int rng 900))
    in
    check_entries_strictly_increasing
      (Printf.sprintf "trial %d, merge" trial)
      (Reuse.merge h other)
  done

let test_blocks_of_addresses () =
  let blocks = Reuse.blocks_of_addresses ~block_bytes:32 [| 0; 31; 32; 64 |] in
  check Alcotest.(array int) "blocks" [| 0; 0; 1; 2 |] blocks;
  Alcotest.check_raises "non power of two"
    (Invalid_argument
       "Reuse.blocks_of_addresses: block size must be a power of two")
    (fun () -> ignore (Reuse.blocks_of_addresses ~block_bytes:24 [| 0 |]))

(* ---- Stats ---------------------------------------------------------- *)

let test_mean_median_percentile () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  checkf "mean" 2.5 (Stats.mean xs);
  checkf "median" 2.5 (Stats.median xs);
  checkf "p0" 1.0 (Stats.percentile xs 0.0);
  checkf "p100" 4.0 (Stats.percentile xs 100.0);
  checkf "p25" 1.75 (Stats.percentile xs 25.0)

let test_geomean () =
  checkf_loose "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |])

let test_variance_std () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  checkf "variance" 4.0 (Stats.variance xs);
  checkf "std" 2.0 (Stats.std xs)

let test_pearson () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  checkf_loose "self" 1.0 (Stats.pearson xs xs);
  checkf_loose "negated" (-1.0) (Stats.pearson xs (Array.map (fun x -> -.x) xs));
  checkf "constant" 0.0 (Stats.pearson xs [| 1.0; 1.0; 1.0; 1.0 |])

let test_boxplot () =
  let xs = Array.init 101 (fun i -> float_of_int i) in
  let b = Stats.boxplot xs in
  checkf "low" 0.0 b.Stats.low;
  checkf "q1" 25.0 b.Stats.q1;
  checkf "med" 50.0 b.Stats.med;
  checkf "q3" 75.0 b.Stats.q3;
  checkf "high" 100.0 b.Stats.high

let test_entropy () =
  checkf "uniform 4" 2.0 (Stats.entropy [| 5; 5; 5; 5 |]);
  checkf "deterministic" 0.0 (Stats.entropy [| 10; 0; 0 |]);
  checkf "empty" 0.0 (Stats.entropy [| 0; 0 |])

let test_mutual_information () =
  (* Perfectly dependent: MI = H = 1 bit. *)
  checkf_loose "dependent" 1.0
    (Stats.mutual_information [| [| 10; 0 |]; [| 0; 10 |] |]);
  checkf_loose "independent" 0.0
    (Stats.mutual_information [| [| 5; 5 |]; [| 5; 5 |] |]);
  checkf_loose "normalised dependent" 1.0
    (Stats.normalised_mutual_information [| [| 10; 0 |]; [| 0; 10 |] |])

let test_quantile_bins () =
  let xs = Array.init 100 (fun i -> float_of_int i) in
  let edges = Stats.quantile_edges xs 4 in
  check Alcotest.int "edges" 3 (Array.length edges);
  check Alcotest.int "bin of 0" 0 (Stats.bin_index edges 0.0);
  check Alcotest.int "bin of 99" 3 (Stats.bin_index edges 99.0)

let test_zscore () =
  let rows = [| [| 1.0; 10.0 |]; [| 3.0; 10.0 |] |] in
  let n = Stats.zscore_fit rows in
  let z = Stats.zscore_apply n [| 2.0; 10.0 |] in
  checkf "centre" 0.0 z.(0);
  checkf "constant column" 0.0 z.(1)

(* ---- Vec ------------------------------------------------------------ *)

let test_vec_ops () =
  checkf "dot" 11.0 (Vec.dot [| 1.0; 2.0 |] [| 3.0; 4.0 |]);
  checkf "l2" 5.0 (Vec.l2_distance [| 0.0; 0.0 |] [| 3.0; 4.0 |]);
  check Alcotest.int "concat" 4
    (Array.length (Vec.concat [| 1.0 |] [| 2.0; 3.0; 4.0 |]));
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Vec.dot: length mismatch (2 vs 1)") (fun () ->
      ignore (Vec.dot [| 1.0; 2.0 |] [| 1.0 |]))

(* ---- Reuse quantisation boundaries ----------------------------------- *)

let test_bucket_exact_below_threshold () =
  let t = Reuse.quantise_threshold in
  check Alcotest.int "threshold is 128" 128 t;
  for d = 0 to t do
    check Alcotest.int (Printf.sprintf "bucket %d exact" d) d (Reuse.bucket d)
  done

let test_bucket_boundary () =
  (* The first quantised distances still round down onto the last exact
     representative; the next bucket up is 136 (~6% step). *)
  let t = Reuse.quantise_threshold in
  check Alcotest.int "t-1" (t - 1) (Reuse.bucket (t - 1));
  check Alcotest.int "t" t (Reuse.bucket t);
  check Alcotest.int "t+1 merges down" t (Reuse.bucket (t + 1));
  check Alcotest.int "133 rounds up" 136 (Reuse.bucket 133);
  check Alcotest.int "next bucket" 136 (Reuse.bucket 136)

let test_bucket_geometric_properties () =
  (* Above the threshold: idempotent, monotone (never re-orders
     distances) and within the ~6% design resolution. *)
  let prev = ref 0 in
  for d = 1 to 4096 do
    let b = Reuse.bucket d in
    check Alcotest.int (Printf.sprintf "idempotent %d" d) b (Reuse.bucket b);
    if b < !prev then
      Alcotest.failf "bucket not monotone: bucket %d = %d < %d" d b !prev;
    prev := max !prev b;
    let err = Float.abs (float_of_int b -. float_of_int d) /. float_of_int d in
    if err > 0.0625 then
      Alcotest.failf "bucket %d = %d off by %.1f%%" d b (100. *. err)
  done

let test_histogram_quantises_at_boundary () =
  (* One access at stack distance d: touch d distinct blocks between two
     accesses to block 10_000.  Distances 128 and 129 land in the same
     entry; 127 stays separate. *)
  let trace_with_distance d =
    Array.concat
      [ [| 10_000 |]; Array.init d Fun.id; [| 10_000 |] ]
  in
  let entry_of d =
    let h = Reuse.histogram_of_blocks (trace_with_distance d) in
    (* All accesses but the last are cold. *)
    check Alcotest.int "cold" (d + 1) h.Reuse.cold;
    check Alcotest.int "total" (d + 2) h.Reuse.total;
    check Alcotest.int "one warm entry" 1 (Array.length h.Reuse.entries);
    fst h.Reuse.entries.(0)
  in
  check Alcotest.int "127 exact" 127 (entry_of 127);
  check Alcotest.int "128 exact" 128 (entry_of 128);
  check Alcotest.int "129 merged into 128" 128 (entry_of 129)

(* ---- Texttab / Ibuf -------------------------------------------------- *)

let test_table_render () =
  let s = Texttab.render_table ~header:[ "a"; "bb" ] [ [ "1"; "2" ] ] in
  if not (String.length s > 0 && String.contains s 'a') then
    Alcotest.fail "table rendering broken"

let test_hinton_ladder () =
  check Alcotest.string "zero" "   " (Texttab.hinton_cell 0.0);
  check Alcotest.string "one" "[#]" (Texttab.hinton_cell 1.0);
  check Alcotest.string "clamped" "[#]" (Texttab.hinton_cell 2.0)

let test_ibuf () =
  let b = Ibuf.create ~capacity:2 () in
  for i = 0 to 99 do
    Ibuf.push b i
  done;
  check Alcotest.int "length" 100 (Ibuf.length b);
  check Alcotest.int "get" 57 (Ibuf.get b 57);
  check Alcotest.(option int) "last" (Some 99) (Ibuf.last b);
  check Alcotest.(array int) "to_array" (Array.init 100 Fun.id) (Ibuf.to_array b);
  Ibuf.clear b;
  check Alcotest.int "cleared" 0 (Ibuf.length b)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "prelude"
    [
      ( "rng",
        [
          quick "determinism" test_rng_determinism;
          quick "bounds" test_rng_bounds;
          quick "split" test_rng_split_independent;
          quick "float range" test_rng_float_range;
          quick "sample without replacement" test_sample_without_replacement;
          quick "sample full population" test_sample_full_population;
          quick "shuffle is a permutation" test_shuffle_permutation;
          quick "gaussian moments" test_gaussian_moments;
          quick "chi-square uniformity" test_rng_chi_square_uniform;
          quick "huge bound in range" test_rng_int_huge_bound;
        ] );
      ( "pool",
        [
          quick "matches sequential" test_pool_matches_sequential;
          quick "size one is inline" test_pool_sequential_size_one;
          quick "empty and reuse" test_pool_empty_and_reuse;
          quick "exception lowest index" test_pool_exception_lowest_index;
          quick "nested use rejected" test_pool_nested_use_rejected;
          quick "deterministic across widths" test_pool_parallel_work_is_deterministic;
          quick "submit after shutdown raises Closed"
            test_pool_submit_after_shutdown_raises;
          quick "shutdown drains the queue" test_pool_shutdown_drains_queue;
        ] );
      ( "backoff",
        [
          quick "validate" test_backoff_validate;
          quick "delay schedule" test_backoff_delay_schedule;
          quick "jitter bounded and deterministic"
            test_backoff_jitter_bounded_and_deterministic;
          quick "retry counts attempts" test_backoff_retry_counts_attempts;
        ] );
      ( "fenwick",
        [
          quick "against naive" test_fenwick_against_naive;
          quick "ranges" test_fenwick_range;
        ] );
      ( "reuse",
        [
          QCheck_alcotest.to_alcotest prop_histogram_matches_naive;
          QCheck_alcotest.to_alcotest prop_fully_assoc_matches_lru;
          quick "binomial tail vs naive" test_binomial_tail_against_naive;
          quick "binomial tail edge cases" test_binomial_tail_edges;
          quick "capacity model monotone" test_capacity_model_monotone;
          quick "capacity model loop cliff" test_capacity_model_loop_cliff;
          quick "merge" test_merge_histograms;
          quick "entries sorted and unique" test_entries_sorted_and_unique;
          quick "blocks of addresses" test_blocks_of_addresses;
          quick "bucket exact below threshold" test_bucket_exact_below_threshold;
          quick "bucket threshold boundary" test_bucket_boundary;
          quick "bucket geometric properties" test_bucket_geometric_properties;
          quick "histogram boundary quantisation" test_histogram_quantises_at_boundary;
        ] );
      ( "stats",
        [
          quick "mean/median/percentile" test_mean_median_percentile;
          quick "geomean" test_geomean;
          quick "variance/std" test_variance_std;
          quick "pearson" test_pearson;
          quick "boxplot" test_boxplot;
          quick "entropy" test_entropy;
          quick "mutual information" test_mutual_information;
          quick "quantile bins" test_quantile_bins;
          quick "zscore" test_zscore;
        ] );
      ( "vec",
        [ quick "operations" test_vec_ops ] );
      ( "render",
        [
          quick "table" test_table_render;
          quick "hinton ladder" test_hinton_ladder;
          quick "ibuf" test_ibuf;
        ] );
    ]
