(* Tests for the MiBench-like workload suite: completeness, validity,
   determinism, and the program characteristics the paper's narrative
   relies on. *)

let check = Alcotest.check

(* The 35 names of figure 4's x-axis. *)
let figure4_names =
  [
    "qsort"; "rawcaudio"; "tiff2rgba"; "gs"; "djpeg"; "patricia"; "basicmath";
    "lout"; "fft_i"; "fft"; "susan_s"; "susan_c"; "tiffmedian"; "ispell";
    "pgp"; "tiffdither"; "bf_e"; "bf_d"; "rawdaudio"; "pgp_sa"; "tiff2bw";
    "cjpeg"; "lame"; "dijkstra"; "susan_e"; "toast"; "madplay"; "untoast";
    "sha"; "bitcnts"; "say"; "rijndael_d"; "crc"; "rijndael_e"; "search";
  ]

let test_suite_complete () =
  check Alcotest.int "35 programs" 35 (Array.length Workloads.Mibench.all);
  List.iter
    (fun name -> ignore (Workloads.Mibench.by_name name))
    figure4_names

let test_unknown_benchmark_rejected () =
  Alcotest.check_raises "unknown"
    (Invalid_argument "Mibench.by_name: unknown benchmark gcc") (fun () ->
      ignore (Workloads.Mibench.by_name "gcc"))

let test_all_programs_valid () =
  Array.iter
    (fun spec ->
      Ir.Validate.check_exn (Workloads.Mibench.program_of spec))
    Workloads.Mibench.all

let test_builds_deterministic () =
  Array.iter
    (fun spec ->
      let a = spec.Workloads.Spec.build () in
      let b = spec.Workloads.Spec.build () in
      let cks p = fst (Ir.Interp.run_program p) in
      check Alcotest.int
        (spec.Workloads.Spec.name ^ " deterministic")
        (cks a) (cks b))
    Workloads.Mibench.all

let test_dynamic_size_bounds () =
  Array.iter
    (fun spec ->
      let program = Workloads.Mibench.program_of spec in
      let _, p = Ir.Interp.run_program program in
      let d = p.Ir.Profile.dyn_insts in
      if d < 5_000 || d > 600_000 then
        Alcotest.failf "%s runs %d instructions (outside sane bounds)"
          spec.Workloads.Spec.name d)
    Workloads.Mibench.all

let test_suites_partition () =
  let count suite =
    Array.to_list Workloads.Mibench.all
    |> List.filter (fun s -> s.Workloads.Spec.suite = suite)
    |> List.length
  in
  check Alcotest.int "auto" 6 (count "auto");
  check Alcotest.int "consumer" 9 (count "consumer");
  check Alcotest.int "network" 2 (count "network");
  check Alcotest.int "office" 4 (count "office");
  check Alcotest.int "security" 7 (count "security");
  check Alcotest.int "telecomm" 7 (count "telecomm")

let profile_of name =
  snd
    (Ir.Interp.run_program
       (Workloads.Mibench.program_of (Workloads.Mibench.by_name name)))

(* Character checks backing the paper's narrative. *)

let test_rijndael_has_big_straightline_body () =
  let p = profile_of "rijndael_e" in
  check Alcotest.bool "multi-KB code" true (p.Ir.Profile.code_bytes > 2500)

let test_fft_is_mac_heavy () =
  let p = profile_of "fft" in
  check Alcotest.bool "macs present" true
    (p.Ir.Profile.mac * 10 > p.Ir.Profile.dyn_insts / 10)

let test_sha_is_shift_heavy () =
  let p = profile_of "sha" in
  let q = profile_of "qsort" in
  let rate x =
    float_of_int x.Ir.Profile.shift /. float_of_int x.Ir.Profile.dyn_insts
  in
  check Alcotest.bool "sha shifter-bound" true (rate p > 0.12);
  check Alcotest.bool "more than qsort" true (rate p > rate q)

let test_say_is_call_heavy () =
  let p = profile_of "say" in
  check Alcotest.bool "calls frequent" true
    (p.Ir.Profile.calls + p.Ir.Profile.tail_calls
    > p.Ir.Profile.dyn_insts / 40)

let test_qsort_branches_unpredictable_structure () =
  let p = profile_of "qsort" in
  check Alcotest.bool "branchy" true
    (p.Ir.Profile.branches > p.Ir.Profile.dyn_insts / 12)

let test_descriptions_present () =
  Array.iter
    (fun s ->
      if String.length s.Workloads.Spec.description < 40 then
        Alcotest.failf "%s lacks a rationale" s.Workloads.Spec.name)
    Workloads.Mibench.all

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "workloads"
    [
      ( "suite",
        [
          quick "complete and named as figure 4" test_suite_complete;
          quick "unknown rejected" test_unknown_benchmark_rejected;
          quick "all valid" test_all_programs_valid;
          quick "deterministic builds" test_builds_deterministic;
          quick "dynamic size bounds" test_dynamic_size_bounds;
          quick "suite partition" test_suites_partition;
          quick "descriptions" test_descriptions_present;
        ] );
      ( "character",
        [
          quick "rijndael code size" test_rijndael_has_big_straightline_body;
          quick "fft mac-heavy" test_fft_is_mac_heavy;
          quick "sha shift-heavy" test_sha_is_shift_heavy;
          quick "say call-heavy" test_say_is_call_heavy;
          quick "qsort branchy" test_qsort_branches_unpredictable_structure;
        ] );
    ]
