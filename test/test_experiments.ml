(* Smoke tests for the experiment drivers at a tiny scale: every figure
   must render non-trivially and report internally consistent numbers. *)

let check = Alcotest.check

let tiny_scale space =
  {
    Ml_model.Dataset.n_uarchs = 3;
    n_opts = 10;
    seed = 23;
    space;
    good_fraction = 0.1;
  }

let ctx =
  lazy
    (Experiments.Context.create ~scale:(tiny_scale Ml_model.Features.Base) ())

let ctx_ext =
  lazy
    (Experiments.Context.create
       ~scale:(tiny_scale Ml_model.Features.Extended)
       ())

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let rendered name render =
  let s = render () in
  if String.length s < 100 then Alcotest.failf "%s rendered almost nothing" name;
  s

let test_fig1 () =
  let s = rendered "fig1" (fun () -> Experiments.Fig1.render (Lazy.force ctx)) in
  check Alcotest.bool "mentions rijndael" true (contains s "rijndael_e")

let test_fig4 () =
  let s = rendered "fig4" (fun () -> Experiments.Fig4.render (Lazy.force ctx)) in
  check Alcotest.bool "has AVERAGE" true (contains s "AVERAGE")

let test_fig5 () =
  let s = rendered "fig5" (fun () -> Experiments.Fig5.render (Lazy.force ctx)) in
  check Alcotest.bool "reports correlation" true (contains s "Correlation");
  let r = Experiments.Fig5.correlation (Lazy.force ctx) in
  check Alcotest.bool "correlation in range" true (r >= -1.0 && r <= 1.0)

let test_fig6 () =
  let s = rendered "fig6" (fun () -> Experiments.Fig6.render (Lazy.force ctx)) in
  check Alcotest.bool "lists search" true (contains s "search");
  let model, best = Experiments.Fig6.averages (Lazy.force ctx) in
  check Alcotest.bool "model <= best + eps" true (model <= best +. 0.05);
  check Alcotest.bool "positive speedups" true (model > 0.5 && best > 0.5)

let test_fig7 () =
  let s = rendered "fig7" (fun () -> Experiments.Fig7.render (Lazy.force ctx)) in
  check Alcotest.bool "mentions model range" true (contains s "Model range")

let test_fig8 () =
  let s = rendered "fig8" (fun () -> Experiments.Fig8.render (Lazy.force ctx)) in
  check Alcotest.bool "mentions schedule flag" true (contains s "fschedule_insns")

let test_fig9 () =
  let s = rendered "fig9" (fun () -> Experiments.Fig9.render (Lazy.force ctx)) in
  check Alcotest.bool "mentions i_size" true (contains s "i_size")

let test_fig10 () =
  let s =
    rendered "fig10" (fun () -> Experiments.Fig10.render (Lazy.force ctx_ext))
  in
  check Alcotest.bool "has AVERAGE" true (contains s "AVERAGE")

let test_convergence () =
  let s =
    rendered "convergence" (fun () ->
        Experiments.Convergence.render (Lazy.force ctx))
  in
  check Alcotest.bool "reports average" true (contains s "Average over all pairs")

let test_summary () =
  let s =
    rendered "summary" (fun () -> Experiments.Summary.render (Lazy.force ctx))
  in
  check Alcotest.bool "headline table" true (contains s "fraction of headroom");
  check Alcotest.bool "space table" true (contains s "288000")

let test_ablation_schemes_agree_on_validity () =
  let d = Experiments.Context.dataset (Lazy.force ctx) in
  let outcomes =
    Experiments.Ablation.crossval_with d Experiments.Ablation.iid_scheme ~k:3
      ~beta:1.0 ~good_fraction:0.1 ~mask:None
  in
  check Alcotest.int "one per pair" (35 * 3) (Array.length outcomes);
  let chain =
    Experiments.Ablation.crossval_with d Experiments.Ablation.chain_scheme
      ~k:3 ~beta:1.0 ~good_fraction:0.1 ~mask:None
  in
  check Alcotest.int "chain too" (35 * 3) (Array.length chain)

let test_csv_export () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "portopt_csv_test" in
  let paths = Experiments.Export.all (Lazy.force ctx) ~dir in
  check Alcotest.int "four files" 4 (List.length paths);
  List.iter
    (fun p ->
      let ic = open_in p in
      let header = input_line ic in
      close_in ic;
      check Alcotest.bool "has header" true (String.length header > 5))
    paths

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "experiments"
    [
      ( "figures",
        [
          quick "fig1" test_fig1;
          quick "fig4" test_fig4;
          quick "fig5" test_fig5;
          quick "fig6" test_fig6;
          quick "fig7" test_fig7;
          quick "fig8" test_fig8;
          quick "fig9" test_fig9;
          quick "fig10" test_fig10;
          quick "convergence" test_convergence;
          quick "summary" test_summary;
        ] );
      ( "ablation",
        [ quick "schemes run" test_ablation_schemes_agree_on_validity ] );
      ( "export", [ quick "csv files" test_csv_export ] );
    ]
