(* Tests for the optimisation passes: the flag space, each pass's specific
   transformation, and the central property that every pipeline preserves
   program semantics (checksums). *)

open Ir.Types
module B = Ir.Builder
module F = Passes.Flags

let check = Alcotest.check

let run_checksum program = fst (Ir.Interp.run_program program)

let compile_checksum setting program =
  fst (Ir.Interp.run (Passes.Driver.compile_to_image ~setting program))

let count_insts pred program =
  List.fold_left
    (fun acc f ->
      List.fold_left
        (fun acc b -> acc + List.length (List.filter pred b.insts))
        acc f.blocks)
    0 program.funcs

let count_blocks program =
  List.fold_left (fun acc f -> acc + List.length f.blocks) 0 program.funcs

let setting_with pairs =
  let s = Array.copy F.o3 in
  List.iter (fun (name, v) -> s.(F.index_of_name name) <- v) pairs;
  s

(* ---- Flags ----------------------------------------------------------- *)

let test_flags_dimensions () =
  check Alcotest.int "39 dimensions" 39 F.n_dims;
  let flags, params =
    Array.fold_left
      (fun (f, p) d ->
        match d.F.kind with F.Flag _ -> (f + 1, p) | F.Param _ -> (f, p + 1))
      (0, 0) F.dims
  in
  check Alcotest.int "30 on/off flags" 30 flags;
  check Alcotest.int "9 parameters" 9 params

let test_flags_space_sizes () =
  (* 2^30 flag combinations; with 8-valued parameters the total reaches
     the paper's order of magnitude (1.69e17). *)
  check (Alcotest.float 1.0) "flags" (2.0 ** 30.0) F.space_size_flags;
  check Alcotest.bool "total magnitude" true
    (F.space_size_total > 1e17 /. 2.0 && F.space_size_total < 2e17);
  check Alcotest.bool "distinct below total" true
    (F.space_size_distinct < F.space_size_total)

let test_flags_o3_defaults () =
  check Alcotest.bool "gcse on" true (F.flag_value F.o3 "fgcse");
  check Alcotest.bool "unroll off" false (F.flag_value F.o3 "funroll_loops");
  check Alcotest.bool "inline on" true (F.flag_value F.o3 "finline_functions");
  check Alcotest.int "gcse passes default" 1
    (F.param_value F.o3 "param_max_gcse_passes")

let test_flags_random_valid () =
  let rng = Prelude.Rng.create 1 in
  for _ = 1 to 200 do
    F.validate (F.random rng)
  done

let test_flags_canonical_gating () =
  let a = setting_with [ ("funroll_loops", 0); ("param_max_unroll_times", 3) ] in
  let b = setting_with [ ("funroll_loops", 0); ("param_max_unroll_times", 6) ] in
  check Alcotest.bool "gated params collapse" true (F.equal_semantics a b);
  let c = setting_with [ ("funroll_loops", 1); ("param_max_unroll_times", 3) ] in
  let d = setting_with [ ("funroll_loops", 1); ("param_max_unroll_times", 6) ] in
  check Alcotest.bool "active params distinguish" false (F.equal_semantics c d)

let test_flags_decode_negative_flags () =
  let cfg = F.decode (setting_with [ ("fno_gcse_lm", 1) ]) in
  check Alcotest.bool "fno_gcse_lm disables lm" false cfg.F.gcse_lm;
  let cfg = F.decode F.o3 in
  check Alcotest.bool "lm on at O3" true cfg.F.gcse_lm

(* ---- Individual passes ----------------------------------------------- *)

let is_mul = function Alu { op = Mul; _ } -> true | _ -> false
let is_load = function Load _ -> true | _ -> false
let is_store = function Store _ -> true | _ -> false
let is_call = function Call _ -> true | _ -> false

let test_constprop_folds_branches () =
  let b = B.create () in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let c = B.cmp fb Lt (Imm 3) (Imm 5) in
      let out = B.mov fb (Imm 0) in
      B.if_ fb c
        ~then_:(fun () -> B.emit fb (Mov { dst = out; src = Imm 1 }))
        ~else_:(fun () -> B.emit fb (Mov { dst = out; src = Imm 2 }));
      B.terminate fb (Return (Some (Reg out))));
  let p = B.finish b ~entry:"main" in
  let p' = Passes.Constprop.run p in
  check Alcotest.int "same result" (run_checksum p) (run_checksum p');
  check Alcotest.bool "branch folded away: fewer blocks" true
    (count_blocks p' < count_blocks p)

let test_constprop_respects_dominance () =
  (* The constant definition sits on one branch side; a use at the join
     must NOT be folded. *)
  let f =
    {
      name = "main";
      params = [];
      blocks =
        [
          {
            label = "e";
            insts = [ Cmp { dst = 0; op = Eq; a = Imm 1; b = Imm 1 } ];
            term = Branch { cond = 0; ifso = "t"; ifnot = "j" };
            balign = 0;
          };
          {
            label = "t";
            insts = [ Mov { dst = 1; src = Imm 5 } ];
            term = Jump "j";
            balign = 0;
          };
          { label = "j"; insts = []; term = Return (Some (Reg 1)); balign = 0 };
        ];
      falign = 0;
      stack_slots = 0;
    }
  in
  let p =
    { funcs = [ f ]; entry_func = "main"; data = []; mem_words = 64;
      stack_base = 0 }
  in
  let p' = Passes.Constprop.run p in
  check Alcotest.int "semantics preserved" (run_checksum p) (run_checksum p')

let test_dce_removes_dead_code () =
  let b = B.create () in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let _dead = B.alu fb Mul (Imm 3) (Imm 4) in
      B.terminate fb (Return (Some (Imm 7))));
  let p = B.finish b ~entry:"main" in
  let p' = Passes.Dce.run p in
  check Alcotest.int "dead mul removed" 0 (count_insts is_mul p');
  check Alcotest.int "semantics" 7 (run_checksum p')

let test_dce_keeps_stores_and_calls () =
  let b = B.create () in
  let a = B.array b "a" ~words:4 ~init:Zeros in
  B.func b "side" ~nparams:0 (fun fb _ ->
      B.store fb (Imm 9) (Imm a) (Imm 0);
      B.terminate fb (Return None));
  B.func b "main" ~nparams:0 (fun fb _ ->
      B.call_void fb "side" [];
      let v = B.load fb (Imm a) (Imm 0) in
      B.terminate fb (Return (Some (Reg v))));
  let p = Passes.Dce.run (B.finish b ~entry:"main") in
  check Alcotest.int "store kept" 1 (count_insts is_store p);
  check Alcotest.int "result through side effect" 9 (run_checksum p)

let test_cse_shares_expressions () =
  let b = B.create () in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let x = B.mov fb (Imm 6) in
      let m1 = B.alu fb Mul (Reg x) (Imm 7) in
      let m2 = B.alu fb Mul (Reg x) (Imm 7) in
      let r = B.alu fb Add (Reg m1) (Reg m2) in
      B.terminate fb (Return (Some (Reg r))));
  let p = B.finish b ~entry:"main" in
  let p' = Passes.Cse.run p in
  check Alcotest.int "one multiply left" 1 (count_insts is_mul p');
  check Alcotest.int "semantics" 84 (run_checksum p')

let test_cse_commutative_keys () =
  let b = B.create () in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let x = B.mov fb (Imm 6) in
      let y = B.mov fb (Imm 7) in
      let m1 = B.alu fb Mul (Reg x) (Reg y) in
      let m2 = B.alu fb Mul (Reg y) (Reg x) in
      let r = B.alu fb Add (Reg m1) (Reg m2) in
      B.terminate fb (Return (Some (Reg r))));
  let p' = Passes.Cse.run (B.finish b ~entry:"main") in
  check Alcotest.int "commuted operands shared" 1 (count_insts is_mul p')

let test_cse_load_killed_by_store () =
  let b = B.create () in
  let a = B.array b "a" ~words:4 ~init:Zeros in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let v1 = B.load fb (Imm a) (Imm 0) in
      B.store fb (Imm 5) (Imm a) (Imm 0);
      let v2 = B.load fb (Imm a) (Imm 0) in
      let r = B.alu fb Add (Reg v1) (Reg v2) in
      B.terminate fb (Return (Some (Reg r))));
  let p = B.finish b ~entry:"main" in
  let p' = Passes.Cse.run p in
  check Alcotest.int "both loads survive" 2 (count_insts is_load p');
  check Alcotest.int "semantics" 5 (run_checksum p')

let test_licm_hoists_invariants () =
  let b = B.create () in
  let a = B.array b "a" ~words:64 ~init:Zeros in
  B.func b "main" ~nparams:0 (fun fb _ ->
      Workloads.Kernels.invariant_heavy_loop fb ~src:a ~dst:a ~words:32
        ~param:3;
      B.terminate fb (Return (Some (Imm 0))));
  let p = B.finish b ~entry:"main" in
  let p' = Passes.Licm.run p in
  check Alcotest.int "checksum preserved" (run_checksum p) (run_checksum p');
  (* The invariant multiply must execute far fewer times. *)
  let dyn prog = (snd (Ir.Interp.run_program prog)).Ir.Profile.dyn_insts in
  check Alcotest.bool "fewer dynamic instructions" true (dyn p' < dyn p - 50)

let test_unroll_clean_divisible () =
  let b = B.create () in
  let a = B.array b "a" ~words:64 ~init:(Ramp { start = 1; step = 1 }) in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let acc = Workloads.Kernels.reduce_xor fb ~base:a ~words:64 (Imm 0) in
      B.terminate fb (Return (Some (Reg acc))));
  let p = B.finish b ~entry:"main" in
  let cfg = F.decode (setting_with [ ("funroll_loops", 1) ]) in
  let p' = Passes.Unroll.run cfg p in
  check Alcotest.int "semantics" (run_checksum p) (run_checksum p');
  let branches prog = (snd (Ir.Interp.run_program prog)).Ir.Profile.branches in
  (* Clean unroll by 8 divides the branch count by ~8. *)
  check Alcotest.bool "far fewer branches" true (branches p' * 4 < branches p)

let test_unroll_exit_retained () =
  (* Trip count unknown (limit in a register loaded from memory). *)
  let b = B.create () in
  let a = B.array b "a" ~words:64 ~init:(Ramp { start = 17; step = 0 }) in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let n = B.load fb (Imm a) (Imm 0) in
      let acc = B.mov fb (Imm 0) in
      B.counted_loop fb ~from:0 ~limit:(Reg n) ~step:1 (fun i ->
          B.emit fb (Alu { dst = acc; op = Add; a = Reg acc; b = Reg i }));
      B.terminate fb (Return (Some (Reg acc))));
  let p = B.finish b ~entry:"main" in
  let cfg = F.decode (setting_with [ ("funroll_loops", 1) ]) in
  let p' = Passes.Unroll.run cfg p in
  check Alcotest.bool "blocks duplicated" true
    (count_blocks p' > count_blocks p);
  check Alcotest.int "semantics (sum 0..16)" 136 (run_checksum p')

let test_unroll_respects_size_limit () =
  let b = B.create () in
  let a = B.array b "a" ~words:64 ~init:Zeros in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let acc =
        Workloads.Kernels.crypto_rounds fb ~state:a ~sbox:a ~sbox_words:64
          ~rounds:8 ~unroll:40
      in
      B.terminate fb (Return (Some (Reg acc))));
  let p = B.finish b ~entry:"main" in
  let cfg =
    F.decode
      (setting_with [ ("funroll_loops", 1); ("param_max_unrolled_insns", 0) ])
  in
  (* Body is ~320 instructions, limit 16: no unrolling may happen. *)
  let p' = Passes.Unroll.run cfg p in
  check Alcotest.int "unchanged size" (program_size p) (program_size p')

let test_inline_splices_callee () =
  let b = B.create () in
  Workloads.Kernels.def_leaf_scale b "leaf" ~m:3 ~a:1 ~s:0;
  B.func b "main" ~nparams:0 (fun fb _ ->
      let r = B.call fb "leaf" [ Imm 5 ] in
      B.terminate fb (Return (Some (Reg r))));
  let p = B.finish b ~entry:"main" in
  let p' = Passes.Inline.run (F.decode F.o3) p in
  check Alcotest.int "call gone" 0
    (count_insts is_call
       { p' with funcs = List.filter (fun f -> f.name = "main") p'.funcs });
  check Alcotest.int "semantics" 16 (run_checksum p')

let test_inline_respects_size_threshold () =
  let b = B.create () in
  Workloads.Kernels.def_helper_mix ~steps:30 b "big" (* ~92 instructions *);
  B.func b "main" ~nparams:0 (fun fb _ ->
      let r = B.call fb "big" [ Imm 5; Imm 7 ] in
      B.terminate fb (Return (Some (Reg r))));
  let p = B.finish b ~entry:"main" in
  let small = F.decode (setting_with [ ("param_max_inline_insns_auto", 0) ]) in
  let p' = Passes.Inline.run small p in
  check Alcotest.int "call kept" 1
    (count_insts is_call
       { p' with funcs = List.filter (fun f -> f.name = "main") p'.funcs })

let test_inline_recursive_not_inlined () =
  let b = B.create () in
  let fb = B.begin_func b "fact" ~nparams:1 in
  let n = 0 in
  let c = B.cmp fb Le (Reg n) (Imm 1) in
  B.terminate fb (Branch { cond = c; ifso = "base"; ifnot = "rec" });
  B.start_block fb "rec";
  let n1 = B.alu fb Sub (Reg n) (Imm 1) in
  let r = B.call fb "fact" [ Reg n1 ] in
  let m = B.alu fb Mul (Reg n) (Reg r) in
  B.terminate fb (Return (Some (Reg m)));
  B.start_block fb "base";
  B.terminate fb (Return (Some (Imm 1)));
  B.end_func fb;
  B.func b "main" ~nparams:0 (fun fb _ ->
      let r = B.call fb "fact" [ Imm 5 ] in
      B.terminate fb (Return (Some (Reg r))));
  let p = B.finish b ~entry:"main" in
  check Alcotest.int "factorial" 120 (run_checksum p);
  let p' = Passes.Inline.run (F.decode F.o3) p in
  check Alcotest.int "still 120" 120 (run_checksum p')

let test_strength_reduce_pow2 () =
  let b = B.create () in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let x = B.mov fb (Imm 5) in
      let r = B.alu fb Mul (Reg x) (Imm 8) in
      B.terminate fb (Return (Some (Reg r))));
  let p = Passes.Strength.run (B.finish b ~entry:"main") in
  check Alcotest.int "mul gone" 0 (count_insts is_mul p);
  check Alcotest.int "semantics" 40 (run_checksum p)

let test_strength_reduce_shift_add () =
  let b = B.create () in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let x = B.mov fb (Imm 7) in
      let r = B.alu fb Mul (Reg x) (Imm 9) in
      B.terminate fb (Return (Some (Reg r))));
  let p = Passes.Strength.run (B.finish b ~entry:"main") in
  check Alcotest.int "mul gone" 0 (count_insts is_mul p);
  check Alcotest.int "semantics" 63 (run_checksum p)

let test_peephole_identities () =
  let b = B.create () in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let x = B.mov fb (Imm 11) in
      let a = B.alu fb Add (Reg x) (Imm 0) in
      let m = B.alu fb Mul (Reg a) (Imm 1) in
      let s = B.shift fb Lsl (Reg m) (Imm 0) in
      B.terminate fb (Return (Some (Reg s))));
  let p = Passes.Peephole.run (B.finish b ~entry:"main") in
  check Alcotest.int "no alu left" 0
    (count_insts (function Alu _ | Shift _ -> true | _ -> false) p);
  check Alcotest.int "semantics" 11 (run_checksum p)

let test_regmove_copy_propagation () =
  let b = B.create () in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let x = B.mov fb (Imm 4) in
      let y = B.mov fb (Reg x) in
      let r = B.alu fb Add (Reg y) (Reg y) in
      B.terminate fb (Return (Some (Reg r))));
  let p = Passes.Dce.run (Passes.Regmove.run (B.finish b ~entry:"main")) in
  (* Constants propagate through both movs, leaving them dead. *)
  check Alcotest.int "movs gone" 0
    (count_insts (function Mov _ -> true | _ -> false) p);
  check Alcotest.int "semantics" 8 (run_checksum p)

let test_sibling_call_conversion () =
  let b = B.create () in
  Workloads.Kernels.def_leaf_scale b "leaf" ~m:2 ~a:0 ~s:0;
  B.func b "wrap" ~nparams:1 (fun fb params ->
      let x = List.nth params 0 in
      let r = B.call fb "leaf" [ Reg x ] in
      B.terminate fb (Return (Some (Reg r))));
  B.func b "main" ~nparams:0 (fun fb _ ->
      let r = B.call fb "wrap" [ Imm 21 ] in
      B.terminate fb (Return (Some (Reg r))));
  let p = B.finish b ~entry:"main" in
  let p' = Passes.Sibling.run p in
  let tail_calls prog =
    List.fold_left
      (fun acc f ->
        List.fold_left
          (fun acc bl -> match bl.term with Tail_call _ -> acc + 1 | _ -> acc)
          acc f.blocks)
      0 prog.funcs
  in
  check Alcotest.int "tail call introduced" 1 (tail_calls p');
  check Alcotest.int "semantics" 42 (run_checksum p')

let test_thread_jumps_collapses_chains () =
  let f =
    {
      name = "main";
      params = [];
      blocks =
        [
          { label = "a"; insts = []; term = Jump "b"; balign = 0 };
          { label = "b"; insts = []; term = Jump "c"; balign = 0 };
          { label = "c"; insts = []; term = Return (Some (Imm 3)); balign = 0 };
        ];
      falign = 0;
      stack_slots = 0;
    }
  in
  let p =
    { funcs = [ f ]; entry_func = "main"; data = []; mem_words = 64;
      stack_base = 0 }
  in
  let p' = Passes.Thread_jumps.run p in
  check Alcotest.bool "chain collapsed" true (count_blocks p' < count_blocks p);
  check Alcotest.int "semantics" 3 (run_checksum p')

let test_crossjump_merges_tails () =
  let shared_tail =
    [
      Alu { dst = 10; op = Add; a = Imm 1; b = Imm 2 };
      Alu { dst = 11; op = Mul; a = Reg 10; b = Imm 3 };
      Store { src = Reg 11; base = Imm 64; offset = Imm 0 };
    ]
  in
  let f =
    {
      name = "main";
      params = [];
      blocks =
        [
          {
            label = "e";
            insts = [ Cmp { dst = 0; op = Eq; a = Imm 1; b = Imm 1 } ];
            term = Branch { cond = 0; ifso = "x"; ifnot = "y" };
            balign = 0;
          };
          {
            label = "x";
            insts = Mov { dst = 1; src = Imm 5 } :: shared_tail;
            term = Jump "z";
            balign = 0;
          };
          {
            label = "y";
            insts = Mov { dst = 1; src = Imm 6 } :: shared_tail;
            term = Jump "z";
            balign = 0;
          };
          {
            label = "z";
            insts = [ Load { dst = 2; base = Imm 64; offset = Imm 0 } ];
            term = Return (Some (Reg 2));
            balign = 0;
          };
        ];
      falign = 0;
      stack_slots = 0;
    }
  in
  let p =
    {
      funcs = [ f ];
      entry_func = "main";
      data = [ { dname = "d"; base = 64; words = 4; init = Zeros } ];
      mem_words = 128;
      stack_base = 256;
    }
  in
  let p' = Passes.Crossjump.run p in
  check Alcotest.bool "code shrank" true (program_size p' < program_size p);
  check Alcotest.int "semantics" (run_checksum p) (run_checksum p')

let test_unswitch_versions_loop () =
  let b = B.create () in
  let a = B.array b "a" ~words:64 ~init:(Ramp { start = 1; step = 1 }) in
  let d = B.array b "d" ~words:64 ~init:Zeros in
  B.func b "main" ~nparams:0 (fun fb _ ->
      Workloads.Kernels.mode_switched_loop fb ~src:a ~dst:d ~words:32 ~mode:1;
      let acc = Workloads.Kernels.reduce_xor fb ~base:d ~words:32 (Imm 0) in
      B.terminate fb (Return (Some (Reg acc))));
  let p = B.finish b ~entry:"main" in
  let p' = Passes.Unswitch.run p in
  check Alcotest.bool "loop duplicated" true (count_blocks p' > count_blocks p);
  check Alcotest.int "semantics" (run_checksum p) (run_checksum p');
  (* The invariant branch no longer executes per iteration. *)
  let branches prog = (snd (Ir.Interp.run_program prog)).Ir.Profile.branches in
  check Alcotest.bool "fewer dynamic branches" true
    (branches p' < branches p - 20)

let test_sched_reduces_stalls () =
  let b = B.create () in
  let a = B.array b "a" ~words:64 ~init:(Ramp { start = 1; step = 1 }) in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let acc = B.mov fb (Imm 0) in
      B.counted_loop fb ~from:0 ~limit:(Imm 32) ~step:1 (fun i ->
          let base, off = Workloads.Kernels.word_addr fb ~base:a i in
          let v = B.load fb base off in
          (* Immediate use: a stall the scheduler can hide. *)
          B.emit fb (Alu { dst = acc; op = Add; a = Reg acc; b = Reg v });
          let x = B.alu fb Xor (Reg i) (Imm 3) in
          let y = B.alu fb Add (Reg x) (Imm 1) in
          B.emit fb (Alu { dst = acc; op = Xor; a = Reg acc; b = Reg y }));
      B.terminate fb (Return (Some (Reg acc))));
  let p = B.finish b ~entry:"main" in
  let p' = Passes.Sched.run ~interblock:false ~spec:false p in
  check Alcotest.int "semantics" (run_checksum p) (run_checksum p');
  let stalls prog =
    let _, profile = Ir.Interp.run_program prog in
    let v = Sim.Pipeline.evaluate profile Uarch.Config.xscale in
    v.Sim.Pipeline.stall_cycles
  in
  check Alcotest.bool "stalls reduced" true (stalls p' < stalls p)

let test_sched_never_increases_stalls_on_suite () =
  (* The greedy selection should never do worse than program order on the
     real workloads. *)
  List.iter
    (fun name ->
      let program =
        Workloads.Mibench.program_of (Workloads.Mibench.by_name name)
      in
      let base = setting_with [ ("fschedule_insns", 0) ] in
      let sched = setting_with [ ("fschedule_insns", 1) ] in
      let stalls s =
        let _, profile =
          Ir.Interp.run (Passes.Driver.compile_to_image ~setting:s program)
        in
        (Sim.Pipeline.evaluate profile Uarch.Config.xscale)
          .Sim.Pipeline.stall_cycles
      in
      let without = stalls base and with_ = stalls sched in
      if with_ > without +. 1.0 then
        Alcotest.failf "%s: scheduling increased stalls %.0f -> %.0f" name
          without with_)
    [ "qsort"; "crc"; "susan_s"; "fft" ]

let test_regalloc_inserts_caller_saves () =
  let b = B.create () in
  Workloads.Kernels.def_leaf_scale b "leaf" ~m:1 ~a:0 ~s:0;
  B.func b "main" ~nparams:0 (fun fb _ ->
      (* Many values live across the call. *)
      let live = List.init 12 (fun i -> B.mov fb (Imm i)) in
      let r = B.call fb "leaf" [ Imm 1 ] in
      let acc =
        List.fold_left (fun acc v -> B.alu fb Add (Reg acc) (Reg v)) r live
      in
      B.terminate fb (Return (Some (Reg acc))));
  let p = B.finish b ~entry:"main" in
  let with_cs = Passes.Regalloc.run ~caller_saves:true ~after_reload:false p in
  let without_cs =
    Passes.Regalloc.run ~caller_saves:false ~after_reload:false p
  in
  let spills prog =
    count_insts
      (function Spill_store _ | Spill_load _ -> true | _ -> false)
      prog
  in
  check Alcotest.bool "saves inserted" true (spills without_cs > 0);
  check Alcotest.bool "caller-saves allocation reduces traffic" true
    (spills with_cs < spills without_cs);
  check Alcotest.int "semantics with saves" (run_checksum p)
    (run_checksum without_cs)

let test_after_reload_cleans_redundant_traffic () =
  let b = B.create () in
  Workloads.Kernels.def_leaf_scale b "leaf" ~m:1 ~a:0 ~s:0;
  B.func b "main" ~nparams:0 (fun fb _ ->
      let live = List.init 12 (fun i -> B.mov fb (Imm i)) in
      (* Two consecutive calls: the second save set is redundant. *)
      let r1 = B.call fb "leaf" [ Imm 1 ] in
      let r2 = B.call fb "leaf" [ Imm 2 ] in
      let acc =
        List.fold_left
          (fun acc v -> B.alu fb Add (Reg acc) (Reg v))
          (B.alu fb Add (Reg r1) (Reg r2))
          live
      in
      B.terminate fb (Return (Some (Reg acc))));
  let p = B.finish b ~entry:"main" in
  let plain = Passes.Regalloc.run ~caller_saves:false ~after_reload:false p in
  let cleaned = Passes.Regalloc.run ~caller_saves:false ~after_reload:true p in
  let spills prog =
    count_insts
      (function Spill_store _ | Spill_load _ -> true | _ -> false)
      prog
  in
  check Alcotest.bool "cleanup removes traffic" true
    (spills cleaned < spills plain);
  check Alcotest.int "semantics" (run_checksum plain) (run_checksum cleaned)

let test_reorder_no_backedge_inversion () =
  let b = B.create () in
  let a = B.array b "a" ~words:64 ~init:(Ramp { start = 1; step = 1 }) in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let acc = Workloads.Kernels.reduce_xor fb ~base:a ~words:64 (Imm 0) in
      B.terminate fb (Return (Some (Reg acc))));
  let p = B.finish b ~entry:"main" in
  let p' = Passes.Reorder.run p in
  check Alcotest.int "semantics" (run_checksum p) (run_checksum p');
  (* The back edge must stay a taken branch, costing no companion jumps. *)
  let jumps prog = (snd (Ir.Interp.run_program prog)).Ir.Profile.jumps in
  check Alcotest.bool "no jump explosion" true (jumps p' <= jumps p + 2)

let test_align_sets_alignment () =
  let p = Workloads.Mibench.program_of (Workloads.Mibench.by_name "crc") in
  let p' = Passes.Align.run (F.decode F.o3) p in
  let has_aligned =
    List.exists
      (fun f ->
        f.falign = 16 || List.exists (fun bl -> bl.balign > 0) f.blocks)
      p'.funcs
  in
  check Alcotest.bool "alignment requested" true has_aligned;
  let grow prog = (Ir.Layout.place prog).Ir.Layout.code_bytes in
  check Alcotest.bool "padding grows code" true (grow p' >= grow p)

let test_gcse_global_sharing () =
  (* The same expression computed in a dominating block and again in a
     successor. *)
  let b = B.create () in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let x = B.mov fb (Imm 9) in
      let m1 = B.alu fb Mul (Reg x) (Imm 11) in
      let c = B.cmp fb Gt (Reg m1) (Imm 0) in
      let out = B.mov fb (Imm 0) in
      B.if_ fb c
        ~then_:(fun () ->
          let m2 = B.alu fb Mul (Reg x) (Imm 11) in
          B.emit fb (Mov { dst = out; src = Reg m2 }))
        ~else_:(fun () -> ());
      B.terminate fb (Return (Some (Reg out))));
  let p = B.finish b ~entry:"main" in
  let p' = Passes.Gcse.run (F.decode F.o3) p in
  check Alcotest.int "one multiply" 1 (count_insts is_mul p');
  check Alcotest.int "semantics" 99 (run_checksum p')

let test_gcse_las_forwards_stores () =
  let b = B.create () in
  let a = B.array b "a" ~words:4 ~init:Zeros in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let x = B.mov fb (Imm 33) in
      B.store fb (Reg x) (Imm a) (Imm 0);
      let v = B.load fb (Imm a) (Imm 0) in
      B.terminate fb (Return (Some (Reg v))));
  let p = B.finish b ~entry:"main" in
  let cfg = F.decode (setting_with [ ("fgcse_las", 1) ]) in
  let p' = Passes.Gcse.run cfg p in
  check Alcotest.int "load forwarded" 0 (count_insts is_load p');
  check Alcotest.int "semantics" 33 (run_checksum p')

let test_gcse_sm_removes_dead_stores () =
  let b = B.create () in
  let a = B.array b "a" ~words:4 ~init:Zeros in
  B.func b "main" ~nparams:0 (fun fb _ ->
      B.store fb (Imm 1) (Imm a) (Imm 0);
      B.store fb (Imm 2) (Imm a) (Imm 0);
      let v = B.load fb (Imm a) (Imm 0) in
      B.terminate fb (Return (Some (Reg v))));
  let p = B.finish b ~entry:"main" in
  let cfg = F.decode (setting_with [ ("fgcse_sm", 1) ]) in
  let p' = Passes.Gcse.run cfg p in
  check Alcotest.int "one store left" 1 (count_insts is_store p');
  check Alcotest.int "semantics" 2 (run_checksum p')


(* ---- Sub-flag behaviours ---------------------------------------------- *)

let test_cse_follow_jumps_extends_scope () =
  (* The same expression on both sides of an unconditional jump: only
     shared when follow_jumps carries availability across the edge. *)
  let build () =
    let b = B.create () in
    let fb = B.begin_func b "main" ~nparams:0 in
    let x = B.mov fb (Imm 6) in
    let m1 = B.alu fb Mul (Reg x) (Imm 7) in
    B.terminate fb (Jump "next");
    B.start_block fb "next";
    let m2 = B.alu fb Mul (Reg x) (Imm 7) in
    let r = B.alu fb Add (Reg m1) (Reg m2) in
    B.terminate fb (Return (Some (Reg r)));
    B.end_func fb;
    B.finish b ~entry:"main"
  in
  let without = Passes.Cse.run ~follow_jumps:false (build ()) in
  let with_ = Passes.Cse.run ~follow_jumps:true (build ()) in
  check Alcotest.int "kept without" 2 (count_insts is_mul without);
  check Alcotest.int "shared with" 1 (count_insts is_mul with_);
  check Alcotest.int "semantics" 84 (run_checksum with_)

let test_sched_interblock_merges_chains () =
  let b = B.create () in
  let fb = B.begin_func b "main" ~nparams:0 in
  let x = B.mov fb (Imm 3) in
  B.terminate fb (Jump "tail");
  B.start_block fb "tail";
  let r = B.alu fb Add (Reg x) (Imm 4) in
  B.terminate fb (Return (Some (Reg r)));
  B.end_func fb;
  let p = B.finish b ~entry:"main" in
  let merged = Passes.Sched.run ~interblock:true ~spec:false p in
  let kept = Passes.Sched.run ~interblock:false ~spec:false p in
  check Alcotest.bool "merged fewer blocks" true
    (count_blocks merged < count_blocks kept);
  check Alcotest.int "semantics" 7 (run_checksum merged)

let test_sched_spec_hoists_multiplies () =
  (* A multiply at the head of a single-predecessor branch target whose
     result is dead on the other path: speculable. *)
  let b = B.create () in
  let fb = B.begin_func b "main" ~nparams:0 in
  let x = B.mov fb (Imm 5) in
  let c = B.cmp fb Gt (Reg x) (Imm 0) in
  B.terminate fb (Branch { cond = c; ifso = "hot"; ifnot = "cold" });
  B.start_block fb "hot";
  let m = B.alu fb Mul (Reg x) (Imm 11) in
  B.terminate fb (Return (Some (Reg m)));
  B.start_block fb "cold";
  B.terminate fb (Return (Some (Imm 0)));
  B.end_func fb;
  let p = B.finish b ~entry:"main" in
  let spec = Passes.Sched.run ~interblock:false ~spec:true p in
  (* The multiply moved into the branching block. *)
  let entry_has_mul prog =
    let f = List.hd prog.funcs in
    List.exists is_mul (List.hd f.blocks).insts
  in
  check Alcotest.bool "hoisted" true (entry_has_mul spec);
  check Alcotest.int "semantics" 55 (run_checksum spec)

let test_inline_unit_growth_cap () =
  (* Many call sites to a mid-sized callee: a tiny unit-growth budget
     must stop inlining before all of them are spliced. *)
  let build () =
    let b = B.create () in
    Workloads.Kernels.def_helper_mix ~steps:8 b "mid";
    B.func b "main" ~nparams:0 (fun fb _ ->
        let acc = ref (B.mov fb (Imm 1)) in
        for _ = 1 to 12 do
          acc := B.call fb "mid" [ Reg !acc; Imm 3 ]
        done;
        B.terminate fb (Return (Some (Reg !acc))));
    B.finish b ~entry:"main"
  in
  let tight =
    F.decode
      (setting_with
         [ ("param_inline_unit_growth", 0); ("param_large_unit_insns", 0) ])
  in
  let loose = F.decode (setting_with [ ("param_inline_unit_growth", 7) ]) in
  let calls_left cfg =
    let p = Passes.Inline.run cfg (build ()) in
    count_insts is_call
      { p with funcs = List.filter (fun f -> f.name = "main") p.funcs }
  in
  check Alcotest.bool "tight budget inlines less" true
    (calls_left tight > calls_left loose);
  check Alcotest.int "semantics preserved under tight budget"
    (run_checksum (build ()))
    (run_checksum (Passes.Inline.run tight (build ())))

let test_thread_jumps_folds_same_target_branch () =
  let f =
    {
      name = "main";
      params = [];
      blocks =
        [
          {
            label = "e";
            insts = [ Cmp { dst = 0; op = Eq; a = Imm 1; b = Imm 2 } ];
            term = Branch { cond = 0; ifso = "x"; ifnot = "x" };
            balign = 0;
          };
          { label = "x"; insts = []; term = Return (Some (Imm 9)); balign = 0 };
        ];
      falign = 0;
      stack_slots = 0;
    }
  in
  let p =
    { funcs = [ f ]; entry_func = "main"; data = []; mem_words = 64;
      stack_base = 0 }
  in
  let p' = Passes.Thread_jumps.run p in
  let has_branch =
    List.exists
      (fun (b : block) -> match b.term with Branch _ -> true | _ -> false)
      (List.hd p'.funcs).blocks
  in
  check Alcotest.bool "branch folded to jump" false has_branch;
  check Alcotest.int "semantics" 9 (run_checksum p')

let test_peephole_cmp_inversion () =
  let b = B.create () in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let c = B.cmp fb Lt (Imm 3) (Imm 5) in
      let z = B.cmp fb Eq (Reg c) (Imm 0) in
      B.terminate fb (Return (Some (Reg z))));
  let p = Passes.Peephole.run (B.finish b ~entry:"main") in
  check Alcotest.int "one compare left" 1
    (count_insts (function Cmp _ -> true | _ -> false) p);
  check Alcotest.int "semantics (not (3<5))" 0 (run_checksum p)

let test_unswitch_budget_bounded () =
  (* A function with many unswitchable loops must not blow up
     unboundedly: the per-function budget caps duplication. *)
  let b = B.create () in
  let a = B.array b "a" ~words:64 ~init:Zeros in
  B.func b "main" ~nparams:0 (fun fb _ ->
      for k = 1 to 5 do
        Workloads.Kernels.mode_switched_loop fb ~src:a ~dst:a ~words:8
          ~mode:(k mod 2)
      done;
      B.terminate fb (Return (Some (Imm 0))));
  let p = B.finish b ~entry:"main" in
  let p' = Passes.Unswitch.run p in
  check Alcotest.bool "bounded growth" true
    (program_size p' < 3 * program_size p);
  check Alcotest.int "semantics" (run_checksum p) (run_checksum p')

let test_driver_idempotent_on_o3 () =
  (* Compiling an already-compiled program must still preserve
     semantics (passes see spill code and lowered conventions). *)
  let program = Workloads.Mibench.program_of (Workloads.Mibench.by_name "crc") in
  let once = Passes.Driver.compile ~setting:F.o3 program in
  let twice = Passes.Driver.compile ~setting:F.o3 once in
  check Alcotest.int "semantics after recompilation" (run_checksum once)
    (run_checksum twice)

(* ---- The big property: semantics preservation ------------------------ *)

let prop_pipeline_preserves_checksum =
  QCheck.Test.make ~name:"random setting preserves checksum on random program"
    ~count:60
    (QCheck.make
       ~print:(fun (pseed, sseed) ->
         Printf.sprintf "prog seed %d, setting seed %d" pseed sseed)
       QCheck.Gen.(pair (int_bound 100000) (int_bound 100000)))
    (fun (pseed, sseed) ->
      let rng = Prelude.Rng.create pseed in
      let program = Testsupport.Gen_program.generate rng in
      let setting = F.random (Prelude.Rng.create sseed) in
      let reference = run_checksum program in
      compile_checksum setting program = reference)

let test_o3_preserves_suite_checksums () =
  Array.iter
    (fun spec ->
      let program = Workloads.Mibench.program_of spec in
      let reference = run_checksum program in
      if compile_checksum F.o3 program <> reference then
        Alcotest.failf "%s miscompiled at O3" spec.Workloads.Spec.name)
    Workloads.Mibench.all

let test_extreme_settings_preserve_suite_checksums () =
  let all_on = Array.mapi (fun i _ -> F.cardinality F.dims.(i) - 1) F.dims in
  List.iter
    (fun setting ->
      List.iter
        (fun name ->
          let program =
            Workloads.Mibench.program_of (Workloads.Mibench.by_name name)
          in
          let reference = run_checksum program in
          if compile_checksum setting program <> reference then
            Alcotest.failf "%s miscompiled" name)
        [ "rijndael_e"; "search"; "say"; "crc"; "tiffdither" ])
    [ F.all_off; all_on ]

let test_validate_after_every_o3_compile () =
  Array.iter
    (fun spec ->
      let program = Workloads.Mibench.program_of spec in
      Ir.Validate.check_exn (Passes.Driver.compile ~setting:F.o3 program))
    Workloads.Mibench.all

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "passes"
    [
      ( "flags",
        [
          quick "dimensions" test_flags_dimensions;
          quick "space sizes" test_flags_space_sizes;
          quick "O3 defaults" test_flags_o3_defaults;
          quick "random settings valid" test_flags_random_valid;
          quick "canonical gating" test_flags_canonical_gating;
          quick "negative flags" test_flags_decode_negative_flags;
        ] );
      ( "scalar passes",
        [
          quick "constprop folds branches" test_constprop_folds_branches;
          quick "constprop respects dominance" test_constprop_respects_dominance;
          quick "dce removes dead code" test_dce_removes_dead_code;
          quick "dce keeps side effects" test_dce_keeps_stores_and_calls;
          quick "cse shares expressions" test_cse_shares_expressions;
          quick "cse commutative keys" test_cse_commutative_keys;
          quick "cse load killed by store" test_cse_load_killed_by_store;
          quick "strength reduce pow2" test_strength_reduce_pow2;
          quick "strength reduce shift+add" test_strength_reduce_shift_add;
          quick "peephole identities" test_peephole_identities;
          quick "regmove copy propagation" test_regmove_copy_propagation;
          quick "gcse global sharing" test_gcse_global_sharing;
          quick "gcse-las store forwarding" test_gcse_las_forwards_stores;
          quick "gcse-sm dead stores" test_gcse_sm_removes_dead_stores;
        ] );
      ( "loop passes",
        [
          quick "licm hoists invariants" test_licm_hoists_invariants;
          quick "unroll clean divisible" test_unroll_clean_divisible;
          quick "unroll exit retained" test_unroll_exit_retained;
          quick "unroll size limit" test_unroll_respects_size_limit;
          quick "unswitch versions loop" test_unswitch_versions_loop;
        ] );
      ( "interprocedural",
        [
          quick "inline splices callee" test_inline_splices_callee;
          quick "inline size threshold" test_inline_respects_size_threshold;
          quick "recursion not inlined" test_inline_recursive_not_inlined;
          quick "sibling call conversion" test_sibling_call_conversion;
        ] );
      ( "cfg passes",
        [
          quick "thread jumps" test_thread_jumps_collapses_chains;
          quick "crossjump merges tails" test_crossjump_merges_tails;
          quick "reorder keeps back edges" test_reorder_no_backedge_inversion;
          quick "alignment" test_align_sets_alignment;
        ] );
      ( "lowering",
        [
          quick "sched reduces stalls" test_sched_reduces_stalls;
          quick "sched never hurts on suite" test_sched_never_increases_stalls_on_suite;
          quick "caller saves" test_regalloc_inserts_caller_saves;
          quick "after-reload cleanup" test_after_reload_cleans_redundant_traffic;
        ] );
      ( "sub-flags",
        [
          quick "cse follow-jumps scope" test_cse_follow_jumps_extends_scope;
          quick "interblock merging" test_sched_interblock_merges_chains;
          quick "speculative hoist" test_sched_spec_hoists_multiplies;
          quick "inline unit growth cap" test_inline_unit_growth_cap;
          quick "branch with equal targets" test_thread_jumps_folds_same_target_branch;
          quick "peephole cmp inversion" test_peephole_cmp_inversion;
          quick "unswitch budget" test_unswitch_budget_bounded;
          quick "driver idempotent" test_driver_idempotent_on_o3;
        ] );
      ( "semantics preservation",
        [
          QCheck_alcotest.to_alcotest prop_pipeline_preserves_checksum;
          quick "O3 on the whole suite" test_o3_preserves_suite_checksums;
          quick "extreme settings" test_extreme_settings_preserve_suite_checksums;
          quick "validate after O3" test_validate_after_every_o3_compile;
        ] );
    ]
