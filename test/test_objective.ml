(* Tests for the multi-objective subsystem: Objective.Spec parsing,
   Objective.Front invariants (property-tested), Cacti monotonicity,
   energy-model guards, the good-set tie-break and the front-maintaining
   search wrappers. *)

module Spec = Objective.Spec
module Front = Objective.Front

let check = Alcotest.check

(* ---- Spec ------------------------------------------------------------- *)

let test_spec_roundtrip () =
  let roundtrip s =
    match Spec.of_string (Spec.to_string s) with
    | Ok s' ->
      check Alcotest.bool
        (Printf.sprintf "round-trip %s" (Spec.to_string s))
        true (Spec.equal s s')
    | Error e -> Alcotest.failf "%s did not round-trip: %s" (Spec.to_string s) e
  in
  roundtrip Spec.Cycles;
  roundtrip Spec.Size;
  roundtrip Spec.Energy;
  roundtrip Spec.Pareto;
  roundtrip (Spec.Weighted { c = 1.0; s = 0.5; e = 0.25 });
  roundtrip (Spec.Weighted { c = 0.0; s = 0.0; e = 3.0 });
  (* Case- and whitespace-insensitive on the way in. *)
  (match Spec.of_string "  CYCLES " with
  | Ok Spec.Cycles -> ()
  | _ -> Alcotest.fail "\"  CYCLES \" did not parse as Cycles");
  check Alcotest.bool "default is cycles" true (Spec.is_default Spec.Cycles);
  check Alcotest.bool "pareto is not default" false (Spec.is_default Spec.Pareto)

let test_spec_rejects_bad () =
  let bad s =
    match Spec.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error e ->
      check Alcotest.bool
        (Printf.sprintf "error for %S is non-empty" s)
        true (String.length e > 0)
  in
  bad "";
  bad "speed";
  bad "w:";
  bad "w:1,2";
  bad "w:1,2,3,4";
  bad "w:1,nope,3";
  bad "w:-1,1,1";
  bad "w:nan,1,1";
  bad "w:0,0,0"

(* ---- Front: property tests -------------------------------------------- *)

(* Small integer-valued scores in a narrow range force plenty of exact
   ties and dominations — the interesting cases. *)
let gen_scores =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) l))
    QCheck.Gen.(list_size (int_range 1 40) (pair (int_bound 5) (int_bound 5)))

let front_of_list ?capacity l =
  let f = Front.create ?capacity ~dims:2 () in
  List.iteri
    (fun i (a, b) ->
      ignore (Front.insert f ~index:i ~score:[| float_of_int a; float_of_int b |]))
    l;
  f

let entry_repr (e : Front.entry) =
  (e.Front.index, Array.to_list e.Front.score)

let prop_no_mutual_domination =
  QCheck.Test.make ~name:"no front member dominates another" ~count:300
    gen_scores (fun l ->
      let m = Front.members (front_of_list l) in
      Array.for_all
        (fun a ->
          Array.for_all
            (fun (b : Front.entry) ->
              a == b
              || not (Front.dominates a.Front.score b.Front.score))
            m)
        m)

let prop_order_invariant =
  (* The unbounded front's membership is a pure function of the
     inserted set: reversing the insertion order (indices kept with
     their scores) must keep the same member set. *)
  QCheck.Test.make ~name:"unbounded front invariant under insertion order"
    ~count:300 gen_scores (fun l ->
      let indexed = List.mapi (fun i s -> (i, s)) l in
      let insert_all order =
        let f = Front.create ~dims:2 () in
        List.iter
          (fun (i, (a, b)) ->
            ignore
              (Front.insert f ~index:i
                 ~score:[| float_of_int a; float_of_int b |]))
          order;
        f
      in
      let forward = Front.members (insert_all indexed) in
      let backward = Front.members (insert_all (List.rev indexed)) in
      Array.to_list (Array.map entry_repr forward)
      = Array.to_list (Array.map entry_repr backward))

let prop_pruning_deterministic =
  QCheck.Test.make ~name:"bounded pruning is deterministic" ~count:300
    gen_scores (fun l ->
      let a = Front.members (front_of_list ~capacity:4 l) in
      let b = Front.members (front_of_list ~capacity:4 l) in
      Array.length a <= 4
      && Array.to_list (Array.map entry_repr a)
         = Array.to_list (Array.map entry_repr b))

let test_front_basics () =
  let f = Front.create ~dims:2 () in
  check Alcotest.bool "first insert accepted" true
    (Front.insert f ~index:0 ~score:[| 1.0; 1.0 |]);
  (* Dominated by the existing member: rejected. *)
  check Alcotest.bool "dominated insert rejected" false
    (Front.insert f ~index:1 ~score:[| 2.0; 2.0 |]);
  (* Dominates the existing member: replaces it. *)
  check Alcotest.bool "dominating insert accepted" true
    (Front.insert f ~index:2 ~score:[| 0.5; 0.5 |]);
  check Alcotest.int "dominated member evicted" 1 (Front.size f);
  (* Equal score keeps the smallest index. *)
  check Alcotest.bool "duplicate score rejected" false
    (Front.insert f ~index:3 ~score:[| 0.5; 0.5 |]);
  (* Incomparable: both stay. *)
  check Alcotest.bool "incomparable accepted" true
    (Front.insert f ~index:4 ~score:[| 0.1; 2.0 |]);
  check Alcotest.int "both members" 2 (Front.size f);
  (* Non-finite scores never enter. *)
  check Alcotest.bool "nan rejected" false
    (Front.insert f ~index:5 ~score:[| Float.nan; 0.0 |]);
  check Alcotest.bool "dimension mismatch raises" true
    (match Front.insert f ~index:6 ~score:[| 1.0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  match Front.to_json f with
  | Obs.Json.Obj fields ->
    check Alcotest.bool "json has members" true
      (List.mem_assoc "members" fields && List.mem_assoc "size" fields)
  | _ -> Alcotest.fail "to_json is not an object"

(* ---- Cacti monotonicity ----------------------------------------------- *)

let test_cacti_monotone () =
  let sizes = [ 1024; 2048; 4096; 8192; 16384; 32768; 65536; 131072 ] in
  let assocs = [ 1; 2; 4; 8; 16 ] in
  let blocks = [ 8; 16; 32; 64 ] in
  let non_decreasing name f l =
    ignore
      (List.fold_left
         (fun prev x ->
           let v = f x in
           if v < prev then
             Alcotest.failf "%s decreased: %g -> %g" name prev v;
           v)
         neg_infinity l)
  in
  List.iter
    (fun assoc ->
      List.iter
        (fun block ->
          non_decreasing "access_time_ns (size)"
            (fun size -> Uarch.Cacti.access_time_ns ~size ~assoc ~block)
            sizes;
          non_decreasing "access_energy_nj (size)"
            (fun size -> Uarch.Cacti.access_energy_nj ~size ~assoc ~block)
            sizes)
        blocks)
    assocs;
  List.iter
    (fun size ->
      List.iter
        (fun block ->
          non_decreasing "access_time_ns (assoc)"
            (fun assoc -> Uarch.Cacti.access_time_ns ~size ~assoc ~block)
            assocs;
          non_decreasing "access_energy_nj (assoc)"
            (fun assoc -> Uarch.Cacti.access_energy_nj ~size ~assoc ~block)
            assocs)
        blocks)
    sizes;
  non_decreasing "leakage_mw (size)"
    (fun size -> Uarch.Cacti.leakage_mw ~size)
    sizes

(* ---- energy guards ---------------------------------------------------- *)

let some_uarch seed =
  let rng = Prelude.Rng.create seed in
  Uarch.Space.random Uarch.Space.Base rng

let test_energy_finite () =
  let program =
    Workloads.Mibench.program_of (Workloads.Mibench.by_name "crc")
  in
  let run = Sim.Xtrem.profile_of ~setting:Passes.Flags.o3 program in
  for seed = 1 to 10 do
    let u = some_uarch seed in
    let e = Sim.Xtrem.energy_mj run u in
    check Alcotest.bool
      (Printf.sprintf "energy finite and positive (seed %d)" seed)
      true
      (Float.is_finite e && e > 0.0)
  done;
  (* A degenerate zero-instruction run must yield finite, non-negative
     energy — never NaN to poison an objective vector. *)
  let zero_run =
    {
      run with
      Sim.Xtrem.profile =
        { run.Sim.Xtrem.profile with Ir.Profile.dyn_insts = 0 };
    }
  in
  let u = some_uarch 1 in
  let e = Sim.Xtrem.energy_mj zero_run u in
  check Alcotest.bool "degenerate run energy finite, non-negative" true
    (Float.is_finite e && e >= 0.0)

(* ---- good-set tie-break ----------------------------------------------- *)

let test_good_set_ties () =
  (* Three equal times straddling the cut: the k = 2 good set must
     admit the two smallest indices, deterministically. *)
  let good =
    Ml_model.Dataset.good_set ~good_fraction:0.5 [| 1.0; 1.0; 1.0; 2.0 |]
  in
  check (Alcotest.list Alcotest.int) "duplicate speedups tie-break by index"
    [ 0; 1 ] (Array.to_list good);
  (* All-equal vector: still the first k by index. *)
  let good = Ml_model.Dataset.good_set ~good_fraction:0.5 [| 3.0; 3.0; 3.0; 3.0 |] in
  check (Alcotest.list Alcotest.int) "all-equal times" [ 0; 1 ]
    (Array.to_list good)

(* ---- front-maintaining search ----------------------------------------- *)

(* A synthetic, deterministic objective over settings: three axes in
   genuine tension (derived from independent hashes), so fronts carry
   several members. *)
let synthetic_eval s =
  let str = Passes.Flags.to_string s in
  let h salt = float_of_int ((Hashtbl.hash (salt ^ str) land 0xffff) + 1) in
  [| h "a"; h "b"; h "c" |]

let assert_front_sane name (r : Search.Front_search.result) =
  let m = Objective.Front.members r.Search.Front_search.front in
  check Alcotest.bool (name ^ ": front non-empty") true (Array.length m > 0);
  Array.iter
    (fun (a : Objective.Front.entry) ->
      Array.iter
        (fun (b : Objective.Front.entry) ->
          if a != b && Objective.Front.dominates a.score b.score then
            Alcotest.failf "%s: member %d dominates member %d" name
              a.Objective.Front.index b.Objective.Front.index)
        m)
    m;
  check Alcotest.bool (name ^ ": evaluations counted") true
    (r.Search.Front_search.evaluations > 0);
  (* Every front index addresses an evaluated setting. *)
  Array.iter
    (fun (e : Objective.Front.entry) ->
      if
        e.Objective.Front.index < 0
        || e.Objective.Front.index
           >= Array.length r.Search.Front_search.front_settings
      then Alcotest.failf "%s: front index out of range" name)
    m

let test_search_front () =
  let rng () = Prelude.Rng.create 42 in
  assert_front_sane "iterative"
    (Search.Iterative.search_front ~rng:(rng ()) ~budget:40
       ~evaluate:synthetic_eval ());
  assert_front_sane "hill_climb"
    (Search.Hill_climb.search_front ~rng:(rng ()) ~budget:40
       ~evaluate:synthetic_eval ());
  assert_front_sane "genetic"
    (Search.Genetic.search_front ~rng:(rng ()) ~budget:40
       ~evaluate:synthetic_eval ())

(* ---- runner ----------------------------------------------------------- *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "objective"
    [
      ( "spec",
        [
          quick "round-trips" test_spec_roundtrip;
          quick "rejects bad specs" test_spec_rejects_bad;
        ] );
      ( "front",
        [
          quick "insert semantics" test_front_basics;
          QCheck_alcotest.to_alcotest prop_no_mutual_domination;
          QCheck_alcotest.to_alcotest prop_order_invariant;
          QCheck_alcotest.to_alcotest prop_pruning_deterministic;
        ] );
      ( "models",
        [
          quick "cacti monotone in size and assoc" test_cacti_monotone;
          quick "energy finite and guarded" test_energy_finite;
        ] );
      ("dataset", [ quick "good-set tie-break" test_good_set_ties ]);
      ("search", [ quick "front-maintaining searchers" test_search_front ]);
    ]
