(* Tests for the IR: builder, validation, CFG analyses, layout and the
   interpreter's semantics. *)

open Ir.Types
module B = Ir.Builder

let check = Alcotest.check

(* Small hand-built programs. *)

let straight_line ret =
  let b = B.create () in
  B.func b "main" ~nparams:0 (fun fb _ ->
      B.terminate fb (Return (Some (Imm ret))));
  B.finish b ~entry:"main"

let run_checksum program = fst (Ir.Interp.run_program program)

(* ---- Builder & Validate --------------------------------------------- *)

let test_builder_minimal () =
  let p = straight_line 42 in
  check Alcotest.int "one function" 1 (List.length p.funcs);
  check Alcotest.int "checksum" 42 (run_checksum p)

let test_builder_open_block_rejected () =
  let b = B.create () in
  let fb = B.begin_func b "main" ~nparams:0 in
  Alcotest.check_raises "open block"
    (Invalid_argument "Builder.end_func: open block left in main")
    (fun () -> B.end_func fb)

let test_builder_double_terminate_rejected () =
  let b = B.create () in
  let fb = B.begin_func b "main" ~nparams:0 in
  B.terminate fb (Return None);
  Alcotest.check_raises "no open block"
    (Invalid_argument "Builder.terminate: no open block in main")
    (fun () -> B.terminate fb (Return None))

let test_validate_catches_dangling_label () =
  let bad =
    {
      funcs =
        [
          {
            name = "main";
            params = [];
            blocks =
              [ { label = "entry"; insts = []; term = Jump "nowhere"; balign = 0 } ];
            falign = 0;
            stack_slots = 0;
          };
        ];
      entry_func = "main";
      data = [];
      mem_words = 64;
      stack_base = 0;
    }
  in
  check Alcotest.bool "error reported" true (Ir.Validate.check bad <> [])

let test_validate_catches_unknown_callee () =
  let bad =
    {
      funcs =
        [
          {
            name = "main";
            params = [];
            blocks =
              [
                {
                  label = "entry";
                  insts = [ Call { dst = None; callee = "ghost"; args = [] } ];
                  term = Return None;
                  balign = 0;
                };
              ];
            falign = 0;
            stack_slots = 0;
          };
        ];
      entry_func = "main";
      data = [];
      mem_words = 64;
      stack_base = 0;
    }
  in
  check Alcotest.bool "error reported" true (Ir.Validate.check bad <> [])

let test_validate_catches_overlapping_data () =
  let bad =
    {
      funcs =
        [
          {
            name = "main";
            params = [];
            blocks = [ { label = "e"; insts = []; term = Return None; balign = 0 } ];
            falign = 0;
            stack_slots = 0;
          };
        ];
      entry_func = "main";
      data =
        [
          { dname = "a"; base = 0; words = 10; init = Zeros };
          { dname = "b"; base = 16; words = 10; init = Zeros };
        ];
      mem_words = 64;
      stack_base = 128;
    }
  in
  check Alcotest.bool "overlap reported" true (Ir.Validate.check bad <> [])

(* ---- Interpreter semantics ------------------------------------------ *)

let eval_expr build =
  let b = B.create () in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let r = build fb in
      B.terminate fb (Return (Some (Reg r))));
  run_checksum (B.finish b ~entry:"main")

let test_arithmetic () =
  check Alcotest.int "add" 7 (eval_expr (fun fb -> B.alu fb Add (Imm 3) (Imm 4)));
  check Alcotest.int "sub" (-1) (eval_expr (fun fb -> B.alu fb Sub (Imm 3) (Imm 4)));
  check Alcotest.int "mul" 12 (eval_expr (fun fb -> B.alu fb Mul (Imm 3) (Imm 4)));
  check Alcotest.int "div" 3 (eval_expr (fun fb -> B.alu fb Div (Imm 13) (Imm 4)));
  check Alcotest.int "div by zero" 0
    (eval_expr (fun fb -> B.alu fb Div (Imm 13) (Imm 0)));
  check Alcotest.int "rem" 1 (eval_expr (fun fb -> B.alu fb Rem (Imm 13) (Imm 4)));
  check Alcotest.int "rem by zero" 0
    (eval_expr (fun fb -> B.alu fb Rem (Imm 13) (Imm 0)));
  check Alcotest.int "min" 3 (eval_expr (fun fb -> B.alu fb Min (Imm 3) (Imm 4)));
  check Alcotest.int "max" 4 (eval_expr (fun fb -> B.alu fb Max (Imm 3) (Imm 4)))

let test_32bit_wraparound () =
  check Alcotest.int "overflow wraps" (-2147483648)
    (eval_expr (fun fb -> B.alu fb Add (Imm 2147483647) (Imm 1)));
  check Alcotest.int "mul wraps" 0
    (eval_expr (fun fb -> B.alu fb Mul (Imm 65536) (Imm 65536)))

let test_shifts () =
  check Alcotest.int "lsl" 40 (eval_expr (fun fb -> B.shift fb Lsl (Imm 5) (Imm 3)));
  check Alcotest.int "lsr" 5 (eval_expr (fun fb -> B.shift fb Lsr (Imm 40) (Imm 3)));
  check Alcotest.int "asr negative" (-1)
    (eval_expr (fun fb -> B.shift fb Asr (Imm (-1)) (Imm 5)));
  check Alcotest.int "lsr of negative is logical on 32 bits" 1
    (eval_expr (fun fb -> B.shift fb Lsr (Imm (-1)) (Imm 31)));
  check Alcotest.int "amount mod 32" 10
    (eval_expr (fun fb -> B.shift fb Lsl (Imm 5) (Imm 33)))

let test_cmp () =
  check Alcotest.int "lt true" 1 (eval_expr (fun fb -> B.cmp fb Lt (Imm 1) (Imm 2)));
  check Alcotest.int "lt false" 0 (eval_expr (fun fb -> B.cmp fb Lt (Imm 2) (Imm 2)));
  check Alcotest.int "ge" 1 (eval_expr (fun fb -> B.cmp fb Ge (Imm 2) (Imm 2)))

let test_mac () =
  check Alcotest.int "mac" 23
    (eval_expr (fun fb -> B.mac fb (Imm 3) (Imm 4) (Imm 5)))

let test_memory_roundtrip () =
  let b = B.create () in
  let a = B.array b "a" ~words:4 ~init:Zeros in
  B.func b "main" ~nparams:0 (fun fb _ ->
      B.store fb (Imm 77) (Imm a) (Imm 8);
      let v = B.load fb (Imm a) (Imm 8) in
      B.terminate fb (Return (Some (Reg v))));
  check Alcotest.int "store/load" 77 (run_checksum (B.finish b ~entry:"main"))

let test_data_initialisers () =
  let b = B.create () in
  let r = B.array b "r" ~words:4 ~init:(Ramp { start = 10; step = 3 }) in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let v = B.load fb (Imm r) (Imm 12) in
      B.terminate fb (Return (Some (Reg v))));
  check Alcotest.int "ramp[3]" 19 (run_checksum (B.finish b ~entry:"main"))

let test_out_of_bounds_fault () =
  let b = B.create () in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let v = B.load fb (Imm 99999999) (Imm 0) in
      B.terminate fb (Return (Some (Reg v))));
  let p = B.finish b ~entry:"main" in
  (try
     ignore (Ir.Interp.run_program p);
     Alcotest.fail "expected fault"
   with Ir.Interp.Runtime_error _ -> ())

let test_call_and_return () =
  let b = B.create () in
  B.func b "double" ~nparams:1 (fun fb params ->
      let x = List.nth params 0 in
      let r = B.alu fb Add (Reg x) (Reg x) in
      B.terminate fb (Return (Some (Reg r))));
  B.func b "main" ~nparams:0 (fun fb _ ->
      let r = B.call fb "double" [ Imm 21 ] in
      B.terminate fb (Return (Some (Reg r))));
  check Alcotest.int "call" 42 (run_checksum (B.finish b ~entry:"main"))

let test_tail_call () =
  let b = B.create () in
  B.func b "finish" ~nparams:1 (fun fb params ->
      let x = List.nth params 0 in
      let r = B.alu fb Add (Reg x) (Imm 1) in
      B.terminate fb (Return (Some (Reg r))));
  B.func b "hop" ~nparams:1 (fun fb params ->
      let x = List.nth params 0 in
      B.terminate fb (Tail_call { callee = "finish"; args = [ Reg x ] }));
  B.func b "main" ~nparams:0 (fun fb _ ->
      let r = B.call fb "hop" [ Imm 41 ] in
      B.terminate fb (Return (Some (Reg r))));
  check Alcotest.int "tail call returns to original caller" 42
    (run_checksum (B.finish b ~entry:"main"))

let test_counted_loop () =
  let b = B.create () in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let acc = B.mov fb (Imm 0) in
      B.counted_loop fb ~from:0 ~limit:(Imm 10) ~step:1 (fun i ->
          B.emit fb (Alu { dst = acc; op = Add; a = Reg acc; b = Reg i }));
      B.terminate fb (Return (Some (Reg acc))));
  check Alcotest.int "sum 0..9" 45 (run_checksum (B.finish b ~entry:"main"))

let test_if_both_branches () =
  let branchy cond =
    let b = B.create () in
    B.func b "main" ~nparams:0 (fun fb _ ->
        let c = B.cmp fb Eq (Imm cond) (Imm 1) in
        let out = B.mov fb (Imm 0) in
        B.if_ fb c
          ~then_:(fun () -> B.emit fb (Mov { dst = out; src = Imm 10 }))
          ~else_:(fun () -> B.emit fb (Mov { dst = out; src = Imm 20 }));
        B.terminate fb (Return (Some (Reg out))));
    run_checksum (B.finish b ~entry:"main")
  in
  check Alcotest.int "then" 10 (branchy 1);
  check Alcotest.int "else" 20 (branchy 0)

let test_fuel_exhaustion () =
  let b = B.create () in
  B.func b "main" ~nparams:0 (fun fb _ ->
      B.terminate fb (Jump "spin");
      B.start_block fb "spin";
      B.terminate fb (Jump "spin"));
  let p = B.finish b ~entry:"main" in
  (try
     ignore (Ir.Interp.run ~fuel:1000 (Ir.Layout.place p));
     Alcotest.fail "expected fuel exhaustion"
   with Ir.Interp.Fuel_exhausted -> ())

(* ---- CFG ------------------------------------------------------------ *)

let diamond () =
  let b = B.create () in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let c = B.cmp fb Eq (Imm 0) (Imm 1) in
      let out = B.mov fb (Imm 0) in
      B.if_ fb c
        ~then_:(fun () -> B.emit fb (Mov { dst = out; src = Imm 1 }))
        ~else_:(fun () -> B.emit fb (Mov { dst = out; src = Imm 2 }));
      B.terminate fb (Return (Some (Reg out))));
  List.hd (B.finish b ~entry:"main").funcs

let test_cfg_dominators_diamond () =
  let f = diamond () in
  let cfg = Ir.Cfg.build f in
  let entry = 0 in
  for i = 0 to Ir.Cfg.n_blocks cfg - 1 do
    check Alcotest.bool "entry dominates all" true (Ir.Cfg.dominates cfg entry i)
  done;
  (* Neither branch side dominates the join. *)
  let idx l = Ir.Cfg.index cfg l in
  let join =
    List.find (fun b -> String.length b.label > 4 && String.sub b.label 0 4 = "join") f.blocks
  in
  let then_ =
    List.find (fun b -> String.length b.label > 4 && String.sub b.label 0 4 = "then") f.blocks
  in
  check Alcotest.bool "then does not dominate join" false
    (Ir.Cfg.dominates cfg (idx then_.label) (idx join.label))

let test_cfg_natural_loop () =
  let b = B.create () in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let acc = B.mov fb (Imm 0) in
      B.counted_loop fb ~from:0 ~limit:(Imm 5) ~step:1 (fun i ->
          B.emit fb (Alu { dst = acc; op = Add; a = Reg acc; b = Reg i }));
      B.terminate fb (Return (Some (Reg acc))));
  let f = List.hd (B.finish b ~entry:"main").funcs in
  let cfg = Ir.Cfg.build f in
  let loops = Ir.Cfg.natural_loops cfg in
  check Alcotest.int "one loop" 1 (List.length loops);
  let loop = List.hd loops in
  check Alcotest.int "single block body" 1 (List.length loop.Ir.Cfg.body)

let test_prune_unreachable () =
  let f =
    {
      name = "f";
      params = [];
      blocks =
        [
          { label = "a"; insts = []; term = Return None; balign = 0 };
          { label = "dead"; insts = []; term = Jump "a"; balign = 0 };
        ];
      falign = 0;
      stack_slots = 0;
    }
  in
  let f' = Ir.Cfg.prune_unreachable f in
  check Alcotest.int "pruned" 1 (List.length f'.blocks)

(* ---- Layout ---------------------------------------------------------- *)

let test_layout_fallthrough_elision () =
  let b = B.create () in
  B.func b "main" ~nparams:0 (fun fb _ ->
      B.terminate fb (Jump "next");
      B.start_block fb "next";
      B.terminate fb (Return (Some (Imm 1))));
  let image = Ir.Layout.place (B.finish b ~entry:"main") in
  let pf = Ir.Layout.func_of_name image "main" in
  check Alcotest.bool "jump elided" true
    pf.Ir.Layout.pf_blocks.(0).Ir.Layout.p_term_elided;
  (* Elided jump occupies no space: only the return is encoded. *)
  check Alcotest.int "code bytes" 4 image.Ir.Layout.code_bytes

let test_layout_alignment_padding () =
  let p = straight_line 1 in
  let aligned =
    map_funcs p (fun f ->
        { f with blocks = List.map (fun b -> { b with balign = 16 }) f.blocks;
                 falign = 16 })
  in
  let base = (Ir.Layout.place p).Ir.Layout.code_bytes in
  let padded = (Ir.Layout.place aligned).Ir.Layout.code_bytes in
  check Alcotest.bool "alignment never shrinks code" true (padded >= base)

let test_layout_branch_companion_jump () =
  (* A branch whose ifnot target is not the next block needs a companion
     jump slot. *)
  let f =
    {
      name = "main";
      params = [];
      blocks =
        [
          {
            label = "e";
            insts = [ Cmp { dst = 0; op = Eq; a = Imm 0; b = Imm 0 } ];
            term = Branch { cond = 0; ifso = "t"; ifnot = "x" };
            balign = 0;
          };
          { label = "t"; insts = []; term = Return (Some (Imm 1)); balign = 0 };
          { label = "x"; insts = []; term = Return (Some (Imm 2)); balign = 0 };
        ];
      falign = 0;
      stack_slots = 0;
    }
  in
  let p =
    { funcs = [ f ]; entry_func = "main"; data = []; mem_words = 64;
      stack_base = 0 }
  in
  let image = Ir.Layout.place p in
  let pf = Ir.Layout.func_of_name image "main" in
  check Alcotest.bool "companion jump present" true
    (pf.Ir.Layout.pf_blocks.(0).Ir.Layout.p_extra_jump_addr >= 0);
  (* And the interpreter must still compute the right value. *)
  check Alcotest.int "semantics" 1 (fst (Ir.Interp.run image))

let test_interp_profile_counts () =
  let b = B.create () in
  let a = B.array b "a" ~words:8 ~init:Zeros in
  B.func b "main" ~nparams:0 (fun fb _ ->
      B.store fb (Imm 5) (Imm a) (Imm 0);
      let v = B.load fb (Imm a) (Imm 0) in
      let m = B.mac fb (Reg v) (Reg v) (Imm 2) in
      let s = B.shift fb Lsl (Reg m) (Imm 1) in
      B.terminate fb (Return (Some (Reg s))));
  let _, profile = Ir.Interp.run_program (B.finish b ~entry:"main") in
  check Alcotest.int "loads" 1 profile.Ir.Profile.loads;
  check Alcotest.int "stores" 1 profile.Ir.Profile.stores;
  check Alcotest.int "mac" 1 profile.Ir.Profile.mac;
  check Alcotest.int "shift" 1 profile.Ir.Profile.shift;
  check Alcotest.int "rets" 1 profile.Ir.Profile.rets;
  check Alcotest.int "dyn" 5 profile.Ir.Profile.dyn_insts

let test_interp_gap_histogram () =
  (* load immediately consumed: gap 0; with one instruction in between:
     gap 1. *)
  let b = B.create () in
  let a = B.array b "a" ~words:8 ~init:Zeros in
  B.func b "main" ~nparams:0 (fun fb _ ->
      let v = B.load fb (Imm a) (Imm 0) in
      let r = B.alu fb Add (Reg v) (Imm 1) in
      let v2 = B.load fb (Imm a) (Imm 4) in
      let _pad = B.mov fb (Imm 0) in
      let r2 = B.alu fb Add (Reg v2) (Reg r) in
      B.terminate fb (Return (Some (Reg r2))));
  let _, profile = Ir.Interp.run_program (B.finish b ~entry:"main") in
  check Alcotest.int "gap 0 uses" 1 profile.Ir.Profile.gap_load.(0);
  check Alcotest.int "gap 1 uses" 1 profile.Ir.Profile.gap_load.(1)


(* ---- Pretty/Parse round trip ------------------------------------------ *)

let test_parse_roundtrip_simple () =
  let p = straight_line 42 in
  let p' = Ir.Parse.program (Ir.Pretty.program p) in
  check Alcotest.bool "structurally equal" true (p = p');
  check Alcotest.int "same checksum" 42 (run_checksum p')

let test_parse_roundtrip_suite () =
  Array.iter
    (fun spec ->
      let p = Workloads.Mibench.program_of spec in
      let p' = Ir.Parse.program (Ir.Pretty.program p) in
      if p <> p' then
        Alcotest.failf "%s: round trip not structural" spec.Workloads.Spec.name;
      check Alcotest.int
        (spec.Workloads.Spec.name ^ " semantics")
        (run_checksum p) (run_checksum p'))
    Workloads.Mibench.all

let test_parse_roundtrip_compiled () =
  (* Post-O3 programs exercise spills, alignment and slots. *)
  List.iter
    (fun name ->
      let p =
        Passes.Driver.compile
          (Workloads.Mibench.program_of (Workloads.Mibench.by_name name))
      in
      let p' = Ir.Parse.program (Ir.Pretty.program p) in
      if p <> p' then Alcotest.failf "%s: compiled round trip differs" name;
      check Alcotest.int (name ^ " semantics") (run_checksum p)
        (run_checksum p'))
    [ "crc"; "rijndael_e"; "say"; "qsort" ]

let prop_parse_roundtrip_random =
  QCheck.Test.make ~name:"parse . pretty is the identity on random programs"
    ~count:80
    (QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000))
    (fun seed ->
      let p = Testsupport.Gen_program.generate (Prelude.Rng.create seed) in
      let p' = Ir.Parse.program (Ir.Pretty.program p) in
      p = p' && run_checksum p = run_checksum p')

let test_parse_rejects_garbage () =
  List.iter
    (fun text ->
      try
        ignore (Ir.Parse.program text);
        Alcotest.failf "accepted %S" text
      with Ir.Parse.Error _ -> ())
    [
      "nonsense";
      "entry main\nfunc main():\nentry:\n    r1 = frob r2, r3\n    return\n";
      "entry main\nfunc main():\n    return\n" (* instruction outside block *);
      "func main():\nentry:\n    return\n" (* missing entry decl *);
    ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ir"
    [
      ( "builder+validate",
        [
          quick "minimal program" test_builder_minimal;
          quick "open block rejected" test_builder_open_block_rejected;
          quick "double terminate rejected" test_builder_double_terminate_rejected;
          quick "dangling label" test_validate_catches_dangling_label;
          quick "unknown callee" test_validate_catches_unknown_callee;
          quick "overlapping data" test_validate_catches_overlapping_data;
        ] );
      ( "interp",
        [
          quick "arithmetic" test_arithmetic;
          quick "32-bit wraparound" test_32bit_wraparound;
          quick "shifts" test_shifts;
          quick "compares" test_cmp;
          quick "mac" test_mac;
          quick "memory roundtrip" test_memory_roundtrip;
          quick "data initialisers" test_data_initialisers;
          quick "out of bounds faults" test_out_of_bounds_fault;
          quick "call/return" test_call_and_return;
          quick "tail call" test_tail_call;
          quick "counted loop" test_counted_loop;
          quick "if both branches" test_if_both_branches;
          quick "fuel exhaustion" test_fuel_exhaustion;
          quick "profile counts" test_interp_profile_counts;
          quick "gap histogram" test_interp_gap_histogram;
        ] );
      ( "cfg",
        [
          quick "diamond dominators" test_cfg_dominators_diamond;
          quick "natural loop" test_cfg_natural_loop;
          quick "prune unreachable" test_prune_unreachable;
        ] );
      ( "parse",
        [
          quick "round trip simple" test_parse_roundtrip_simple;
          quick "round trip suite" test_parse_roundtrip_suite;
          quick "round trip compiled" test_parse_roundtrip_compiled;
          QCheck_alcotest.to_alcotest prop_parse_roundtrip_random;
          quick "rejects garbage" test_parse_rejects_garbage;
        ] );
      ( "layout",
        [
          quick "fallthrough elision" test_layout_fallthrough_elision;
          quick "alignment padding" test_layout_alignment_padding;
          quick "companion jump" test_layout_branch_companion_jump;
        ] );
    ]
