(* Tests for the content-addressed evaluation store: digest stability,
   run export/import round-trips, record corruption negatives,
   concurrent writers, LRU garbage collection, the two-tier profile
   cache and the headline property — a warm store rebuilds the dataset
   bit-identically with zero interpreter runs. *)

module F = Passes.Flags
module X = Sim.Xtrem

let check = Alcotest.check

let program name =
  Workloads.Mibench.program_of (Workloads.Mibench.by_name name)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let tmp_dir name =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "portopt_store_%d_%s" (Unix.getpid ()) name)
  in
  if Sys.file_exists path then rm_rf path;
  path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  n = 0 || go 0

let replace s ~sub ~by =
  let n = String.length sub in
  let rec find i =
    if i + n > String.length s then
      Alcotest.failf "replace: %S not found" sub
    else if String.sub s i n = sub then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ by ^ String.sub s (i + n) (String.length s - i - n)

(* All record files in a store directory, path-sorted. *)
let record_paths dir =
  let obj = Filename.concat dir "objects" in
  Sys.readdir obj |> Array.to_list
  |> List.concat_map (fun sub ->
         let sd = Filename.concat obj sub in
         if Sys.is_directory sd then
           Sys.readdir sd |> Array.to_list
           |> List.filter_map (fun n ->
                  if Filename.check_suffix n ".rec" then
                    Some (Filename.concat sd n)
                  else None)
         else [])
  |> List.sort compare

(* ---- digests ---------------------------------------------------------- *)

let test_fnv_vectors () =
  (* Published FNV-1a 64 test vectors, plus agreement with the artifact
     checksummer the record format mirrors. *)
  check Alcotest.string "empty" "cbf29ce484222325" (Prelude.Fnv.digest_string "");
  check Alcotest.string "a" "af63dc4c8601ec8c" (Prelude.Fnv.digest_string "a");
  check Alcotest.string "foobar" "85944171f73967e8"
    (Prelude.Fnv.digest_string "foobar");
  check Alcotest.string "artifact checksummer agrees"
    (Serve.Artifact.fnv1a64 "portable optimisation")
    (Prelude.Fnv.tagged_string "portable optimisation");
  (* Streaming = one-shot. *)
  let d = Prelude.Fnv.create () in
  Prelude.Fnv.add_string d "foo";
  Prelude.Fnv.add_string d "bar";
  check Alcotest.string "streaming" "85944171f73967e8" (Prelude.Fnv.to_hex d)

let test_digests_stable_and_distinct () =
  let p = program "crc" in
  let q = program "dijkstra" in
  check Alcotest.string "program digest deterministic"
    (Store.program_digest p) (Store.program_digest p);
  check Alcotest.bool "programs distinguished" true
    (Store.program_digest p <> Store.program_digest q);
  let rng = Prelude.Rng.create 11 in
  let s1 = F.random rng and s2 = F.random rng in
  check Alcotest.bool "settings distinguished" true
    (F.cache_key s1 = F.cache_key s2
    || Store.setting_digest s1 <> Store.setting_digest s2);
  let key = Store.profile_key ~program_digest:(Store.program_digest p) ~setting:s1 in
  check Alcotest.bool "key embeds pipeline fingerprint" true
    (contains key Passes.Driver.fingerprint)

(* ---- run codec -------------------------------------------------------- *)

let test_export_import_roundtrip () =
  let p = program "crc" in
  let rng = Prelude.Rng.create 7 in
  for i = 0 to 4 do
    let setting = if i = 0 then F.o3 else F.random rng in
    let r = X.profile_of ~setting p in
    (* Through the JSON text, as the disk does. *)
    match Obs.Json.of_string (Obs.Json.to_string (X.export r)) with
    | Error e -> Alcotest.fail e
    | Ok j -> (
      match X.import j with
      | Error e -> Alcotest.fail e
      | Ok r' ->
        if r' <> r then Alcotest.fail "import (export r) not bit-identical")
  done

let test_import_rejects_malformed () =
  let r = X.profile_of ~setting:F.o3 (program "crc") in
  let j = X.export r in
  (match X.import (Obs.Json.Obj [ ("setting", Obs.Json.Int 3) ]) with
  | Ok _ -> Alcotest.fail "accepted malformed run"
  | Error e ->
    check Alcotest.bool "names the field" true (contains e "setting"));
  (* An out-of-range setting value must not import. *)
  match j with
  | Obs.Json.Obj fields ->
    let bad =
      Obs.Json.Obj
        (List.map
           (fun (k, v) ->
             if k = "setting" then
               (k, Obs.Json.List [ Obs.Json.Int 999 ])
             else (k, v))
           fields)
    in
    (match X.import bad with
    | Ok _ -> Alcotest.fail "accepted out-of-range setting"
    | Error _ -> ())
  | _ -> Alcotest.fail "export is not an object"

(* ---- store round-trip ------------------------------------------------- *)

let test_store_roundtrip () =
  let dir = tmp_dir "roundtrip" in
  let st = Store.open_ ~dir in
  let p = program "crc" in
  let key =
    Store.profile_key ~program_digest:(Store.program_digest p) ~setting:F.o3
  in
  check Alcotest.bool "cold miss" true (Store.find_run st ~key = None);
  let r = X.profile_of ~setting:F.o3 p in
  Store.put_run st ~key r;
  (match Store.find_run st ~key with
  | None -> Alcotest.fail "expected a hit after put"
  | Some r' -> if r' <> r then Alcotest.fail "stored run differs");
  let s = Store.stats st in
  check Alcotest.int "one entry" 1 s.Store.entries;
  check Alcotest.bool "bytes positive" true (s.Store.bytes > 0);
  (* A second handle on the same directory (another process, in
     effect) reads the same record back. *)
  let st2 = Store.open_ ~dir in
  (match Store.find_run st2 ~key with
  | Some r' when r' = r -> ()
  | _ -> Alcotest.fail "reopened store missed");
  let report = Store.verify st2 in
  check Alcotest.int "verify checked" 1 report.Store.checked;
  check Alcotest.int "verify clean" 0 (List.length report.Store.errors)

(* ---- corruption negatives --------------------------------------------- *)

(* One store directory with one known-good record, recreated per case. *)
let with_record name f =
  let dir = tmp_dir name in
  let st = Store.open_ ~dir in
  let p = program "crc" in
  let key =
    Store.profile_key ~program_digest:(Store.program_digest p) ~setting:F.o3
  in
  Store.put_run st ~key (X.profile_of ~setting:F.o3 p);
  match record_paths dir with
  | [ path ] -> f st key path
  | l -> Alcotest.failf "expected one record, found %d" (List.length l)

let expect_load_error st key path sub =
  (match Store.load_record ~path with
  | Ok _ -> Alcotest.failf "loaded a record that should fail with %S" sub
  | Error e ->
    if not (contains e sub) then
      Alcotest.failf "error %S does not mention %S" e sub);
  (* Readers degrade to a miss, never an exception. *)
  check Alcotest.bool "find degrades to miss" true
    (Store.find_run st ~key = None);
  (* And verify reports exactly this record. *)
  let report = Store.verify st in
  check Alcotest.int "verify flags it" 1 (List.length report.Store.errors)

let test_corrupt_flipped_byte () =
  with_record "flip" (fun st key path ->
      let text = read_file path in
      let nl = String.index text '\n' in
      let b = Bytes.of_string text in
      let i = nl + 20 in
      Bytes.set b i (if Bytes.get b i = 'a' then 'b' else 'a');
      write_file path (Bytes.to_string b);
      expect_load_error st key path "checksum mismatch")

let test_corrupt_truncated () =
  with_record "truncate" (fun st key path ->
      let text = read_file path in
      let nl = String.index text '\n' in
      write_file path (String.sub text 0 (nl + 10));
      expect_load_error st key path "truncated record")

let test_corrupt_empty () =
  with_record "empty" (fun st key path ->
      write_file path "";
      expect_load_error st key path "truncated record")

let test_corrupt_future_version () =
  with_record "future" (fun st key path ->
      let text = read_file path in
      write_file path (replace text ~sub:"\"version\":2" ~by:"\"version\":99");
      expect_load_error st key path "unsupported store version")

(* Records written before the static-size field (version 1, no "size")
   must still load: the run comes back with [size = None] and readers
   recompute the size on demand. *)
let test_v1_record_still_loads () =
  with_record "v1" (fun st key path ->
      let text = read_file path in
      let nl = String.index text '\n' in
      let payload = String.sub text (nl + 1) (String.length text - nl - 2) in
      (* Strip the v2-only "size" field and restamp as a version-1
         record — header checksum covers the payload line. *)
      let old_payload =
        let module J = Obs.Json in
        match J.of_string payload with
        | Ok (J.Obj [ ("key", k); ("run", J.Obj run_fields) ]) ->
          J.to_string
            (J.Obj
               [ ("key", k); ("run", J.Obj (List.remove_assoc "size" run_fields)) ])
        | _ -> Alcotest.fail "payload is not the expected record object"
      in
      let header =
        let module J = Obs.Json in
        J.to_string
          (J.Obj
             [
               ("magic", J.Str "portopt-store");
               ("version", J.Int 1);
               ("checksum", J.Str (Prelude.Fnv.tagged_string old_payload));
               ("bytes", J.Int (String.length old_payload));
             ])
      in
      write_file path (header ^ "\n" ^ old_payload ^ "\n");
      match Store.find_run st ~key with
      | None -> Alcotest.fail "v1 record did not load"
      | Some r ->
        check Alcotest.bool "v1 run has no stored size" true
          (r.X.size = None))

let test_corrupt_wrong_magic () =
  with_record "magic" (fun st key path ->
      let text = read_file path in
      write_file path
        (replace text ~sub:"\"portopt-store\"" ~by:"\"someone-else\"");
      expect_load_error st key path "not a portopt store record")

let test_corrupt_key_mismatch () =
  with_record "keymismatch" (fun st key path ->
      (* Rename the record to another key's path: content is intact but
         addresses the wrong key — must not be served. *)
      let other = Filename.concat (Filename.dirname path) "deadbeef.rec" in
      Sys.rename path other;
      (match Store.load_record ~path:other with
      | Ok _ -> ()  (* load_record returns the payload key... *)
      | Error e -> Alcotest.failf "intact record failed to load: %s" e);
      check Alcotest.bool "find by old key misses" true
        (Store.find_run st ~key = None);
      let report = Store.verify st in
      check Alcotest.int "verify flags the rename" 1
        (List.length report.Store.errors);
      match report.Store.errors with
      | [ (_, reason) ] ->
        check Alcotest.bool "reason is key mismatch" true
          (contains reason "key mismatch")
      | _ -> Alcotest.fail "unexpected verify report")

(* ---- concurrent writers ----------------------------------------------- *)

let test_concurrent_writers () =
  let dir = tmp_dir "concurrent" in
  let p = program "crc" in
  let rng = Prelude.Rng.create 5 in
  let settings = Array.init 6 (fun i -> if i = 0 then F.o3 else F.random rng) in
  let runs = Array.map (fun s -> X.profile_of ~setting:s p) settings in
  let pd = Store.program_digest p in
  let keys =
    Array.map (fun s -> Store.profile_key ~program_digest:pd ~setting:s) settings
  in
  (* Four writers, each with its own handle (as separate processes
     would have), hammering overlapping keys. *)
  let writers =
    List.init 4 (fun ti ->
        Thread.create
          (fun () ->
            let st = Store.open_ ~dir in
            for i = 0 to 23 do
              let j = (i + ti) mod Array.length keys in
              Store.put_run st ~key:keys.(j) runs.(j)
            done)
          ())
  in
  List.iter Thread.join writers;
  let st = Store.open_ ~dir in
  let distinct =
    List.length (List.sort_uniq compare (Array.to_list keys))
  in
  let report = Store.verify st in
  check Alcotest.int "every key stored once" distinct report.Store.checked;
  check Alcotest.int "no corruption" 0 (List.length report.Store.errors);
  Array.iteri
    (fun j key ->
      match Store.find_run st ~key with
      | Some r when r = runs.(j) -> ()
      | Some _ -> Alcotest.failf "key %d served a different run" j
      | None -> Alcotest.failf "key %d missing" j)
    keys;
  (* No temp debris left behind. *)
  let obj = Filename.concat dir "objects" in
  Array.iter
    (fun sub ->
      let sd = Filename.concat obj sub in
      if Sys.is_directory sd then
        Array.iter
          (fun n ->
            if not (Filename.check_suffix n ".rec") then
              Alcotest.failf "leftover temp file %s" n)
          (Sys.readdir sd))
    (Sys.readdir obj)

(* ---- garbage collection ----------------------------------------------- *)

let distinct_settings n seed =
  let rng = Prelude.Rng.create seed in
  let seen = Hashtbl.create 16 in
  Array.init n (fun _ ->
      let rec fresh () =
        let s = F.random rng in
        if Hashtbl.mem seen (F.cache_key s) then fresh ()
        else begin
          Hashtbl.add seen (F.cache_key s) ();
          s
        end
      in
      fresh ())


let test_gc_oldest_first () =
  let dir = tmp_dir "gc" in
  let st = Store.open_ ~dir in
  let p = program "crc" in
  let rng = Prelude.Rng.create 13 in
  let settings =
    (* Distinct canonical settings so each put lands in its own record. *)
    let seen = Hashtbl.create 8 in
    Array.init 5 (fun _ ->
        let rec fresh () =
          let s = F.random rng in
          if Hashtbl.mem seen (F.cache_key s) then fresh ()
          else begin
            Hashtbl.add seen (F.cache_key s) ();
            s
          end
        in
        fresh ())
  in
  let pd = Store.program_digest p in
  let keys =
    Array.map (fun s -> Store.profile_key ~program_digest:pd ~setting:s) settings
  in
  Array.iteri
    (fun i s -> Store.put_run st ~key:keys.(i) (X.profile_of ~setting:s p))
    settings;
  (* Impose an explicit age order: record i last used at second i. *)
  Array.iteri
    (fun i key ->
      let path =
        List.find
          (fun path -> Filename.basename path = key ^ ".rec")
          (record_paths dir)
      in
      Unix.utimes path (float_of_int (i + 1)) (float_of_int (i + 1)))
    keys;
  let total = (Store.stats st).Store.bytes in
  let bound = total * 2 / 5 in
  let evicted, after = Store.gc st ~max_bytes:bound in
  check Alcotest.bool "evicted some" true (evicted >= 3);
  check Alcotest.int "entries tally" (5 - evicted) after.Store.entries;
  check Alcotest.bool "under bound" true (after.Store.bytes <= bound);
  (* Deletions are oldest-first: a missing record is never newer than a
     surviving one. *)
  Array.iteri
    (fun i key ->
      let expected_present = i >= evicted in
      let present = Store.find_run st ~key <> None in
      check Alcotest.bool
        (Printf.sprintf "record %d %s" i
           (if expected_present then "survives" else "evicted"))
        expected_present present)
    keys;
  (* Survivors are untouched records, not partial files. *)
  check Alcotest.int "survivors verify clean" 0
    (List.length (Store.verify st).Store.errors);
  let evicted_all, empty = Store.gc st ~max_bytes:0 in
  check Alcotest.int "gc to zero empties" 0 empty.Store.entries;
  check Alcotest.int "remaining evicted" (5 - evicted) evicted_all

let test_gc_dry_run_deletes_nothing () =
  let dir = tmp_dir "gc_dry" in
  let st = Store.open_ ~dir in
  let p = program "sha" in
  let pd = Store.program_digest p in
  let settings = distinct_settings 4 29 in
  Array.iter
    (fun s ->
      Store.put_run st
        ~key:(Store.profile_key ~program_digest:pd ~setting:s)
        (X.profile_of ~setting:s p))
    settings;
  let before = Store.stats st in
  let bound = before.Store.bytes / 2 in
  let would_evict, projected = Store.gc ~dry_run:true st ~max_bytes:bound in
  (* The dry run reports the plan... *)
  check Alcotest.bool "would evict some" true (would_evict >= 1);
  check Alcotest.int "projected entries"
    (before.Store.entries - would_evict)
    projected.Store.entries;
  check Alcotest.bool "projected bytes under bound" true
    (projected.Store.bytes <= bound);
  (* ...but touches nothing on disk. *)
  let after = Store.stats st in
  check Alcotest.int "entries untouched" before.Store.entries
    after.Store.entries;
  check Alcotest.int "bytes untouched" before.Store.bytes after.Store.bytes;
  Array.iter
    (fun s ->
      let key = Store.profile_key ~program_digest:pd ~setting:s in
      check Alcotest.bool "record still present" true
        (Store.find_run st ~key <> None))
    settings;
  (* A real gc then enacts exactly the dry run's plan. *)
  let evicted, stats = Store.gc st ~max_bytes:bound in
  check Alcotest.int "real gc evicts the planned count" would_evict evicted;
  check Alcotest.int "real gc lands on the projection"
    projected.Store.entries stats.Store.entries

(* ---- two-tier profile cache ------------------------------------------- *)

let test_profile_cache_ram_bound () =
  let cache = Store.Profile_cache.create ~ram_capacity:2 () in
  let p = program "crc" in
  let pd = Store.program_digest p in
  let computed = ref 0 in
  let get s =
    Store.Profile_cache.find_or_compute cache ~program_digest:pd ~setting:s
      (fun () ->
        incr computed;
        X.profile_of ~setting:s p)
  in
  let s = distinct_settings 3 17 in
  let r0 = get s.(0) in
  check Alcotest.bool "returned run carries requested setting" true
    (r0.X.setting == s.(0));
  ignore (get s.(1));
  ignore (get s.(2));
  check Alcotest.int "three cold computes" 3 !computed;
  check Alcotest.int "RAM tier bounded" 2 (Store.Profile_cache.ram_size cache);
  ignore (get s.(2));
  check Alcotest.int "recent entry hits" 3 !computed;
  ignore (get s.(0));
  check Alcotest.int "evicted entry recomputes" 4 !computed

let test_profile_cache_disk_tier () =
  let dir = tmp_dir "twotier" in
  let st = Store.open_ ~dir in
  let p = program "crc" in
  let pd = Store.program_digest p in
  let s = distinct_settings 3 19 in
  let computed = ref 0 in
  let get cache setting =
    Store.Profile_cache.find_or_compute cache ~program_digest:pd ~setting
      (fun () ->
        incr computed;
        X.profile_of ~setting p)
  in
  let c1 = Store.Profile_cache.create ~ram_capacity:8 ~disk:st () in
  let cold = Array.map (get c1) s in
  check Alcotest.int "cold computes" 3 !computed;
  (* A fresh cache over the same store: disk hits, zero computes. *)
  let c2 =
    Store.Profile_cache.create ~ram_capacity:8 ~disk:(Store.open_ ~dir) ()
  in
  let warm = Array.map (get c2) s in
  check Alcotest.int "warm computes nothing" 3 !computed;
  check Alcotest.bool "warm runs bit-identical" true (cold = warm)

(* ---- warm dataset: the headline acceptance property ------------------- *)

let tiny_scale =
  {
    Ml_model.Dataset.n_uarchs = 2;
    n_opts = 6;
    seed = 29;
    space = Ml_model.Features.Base;
    good_fraction = 0.1;
  }

let test_warm_dataset_zero_interps () =
  let dir = tmp_dir "warm_dataset" in
  let d1 = Ml_model.Dataset.generate ~store:(Store.open_ ~dir) tiny_scale in
  let interp = Obs.Metrics.counter "interp.runs" in
  let before = Obs.Metrics.value interp in
  let d2 = Ml_model.Dataset.generate ~store:(Store.open_ ~dir) tiny_scale in
  check Alcotest.int "warm rerun performs zero interpreter runs" 0
    (Obs.Metrics.value interp - before);
  (* The rebuilt dataset is bit-identical, fields and floats included. *)
  check Alcotest.bool "settings" true
    (d1.Ml_model.Dataset.settings = d2.Ml_model.Dataset.settings);
  check Alcotest.bool "o3 runs" true
    (d1.Ml_model.Dataset.o3_runs = d2.Ml_model.Dataset.o3_runs);
  check Alcotest.bool "runs" true
    (d1.Ml_model.Dataset.runs = d2.Ml_model.Dataset.runs);
  check Alcotest.bool "pairs" true
    (d1.Ml_model.Dataset.pairs = d2.Ml_model.Dataset.pairs);
  check Alcotest.bool "provenance digests" true
    (Ml_model.Dataset.provenance_digests d1
    = Ml_model.Dataset.provenance_digests d2);
  (* And so is a saved model artifact, byte for byte. *)
  let save name d =
    let path = Filename.concat (tmp_dir ("art_" ^ name)) "m.pcm" in
    Unix.mkdir (Filename.dirname path) 0o755;
    Serve.Artifact.save ~path
      {
        Serve.Artifact.model = Ml_model.Model.train d;
        space = tiny_scale.Ml_model.Dataset.space;
        meta = [ ("suite", Obs.Json.Str "store-test") ];
      };
    read_file path
  in
  check Alcotest.bool "saved artifacts byte-identical" true
    (save "cold" d1 = save "warm" d2)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "store"
    [
      ( "digests",
        [
          quick "fnv test vectors" test_fnv_vectors;
          quick "stable and distinct" test_digests_stable_and_distinct;
        ] );
      ( "codec",
        [
          quick "export/import round-trip" test_export_import_roundtrip;
          quick "import rejects malformed" test_import_rejects_malformed;
        ] );
      ( "records",
        [
          quick "put/find round-trip" test_store_roundtrip;
          quick "flipped byte" test_corrupt_flipped_byte;
          quick "truncated" test_corrupt_truncated;
          quick "empty file" test_corrupt_empty;
          quick "future version" test_corrupt_future_version;
          quick "v1 record still loads" test_v1_record_still_loads;
          quick "wrong magic" test_corrupt_wrong_magic;
          quick "key mismatch" test_corrupt_key_mismatch;
          quick "concurrent writers" test_concurrent_writers;
        ] );
      ( "gc",
        [
          quick "oldest first, size bound" test_gc_oldest_first;
          quick "dry run deletes nothing" test_gc_dry_run_deletes_nothing;
        ] );
      ( "profile cache",
        [
          quick "RAM tier bounded" test_profile_cache_ram_bound;
          quick "disk tier read-through" test_profile_cache_disk_tier;
        ] );
      ( "warm dataset",
        [ quick "zero interps, bit-identical" test_warm_dataset_zero_interps ] );
    ]
