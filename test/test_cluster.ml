(* Tests for the cluster subsystem: wire/task codecs, seeded chaos,
   and the coordinator/worker fabric end-to-end — in-process workers
   on real sockets, compared bit-for-bit against local evaluation,
   including under chaos and with a worker killed mid-run. *)

module J = Obs.Json
module F = Passes.Flags
module X = Sim.Xtrem

let check = Alcotest.check

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "portopt_cluster_%d_%s" (Unix.getpid ()) name)

let tmp_dir name =
  let dir = tmp_path name in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  dir

(* ---- task codec -------------------------------------------------------- *)

let test_task_roundtrip () =
  let rng = Prelude.Rng.create 11 in
  for i = 0 to 9 do
    let t =
      {
        Cluster.Task.program = Workloads.Mibench.names.(i mod 3);
        setting = F.random rng;
      }
    in
    match Cluster.Task.of_json (Cluster.Task.to_json t) with
    | Ok t' ->
      check Alcotest.string "program" t.Cluster.Task.program
        t'.Cluster.Task.program;
      check Alcotest.bool "setting" true
        (t.Cluster.Task.setting = t'.Cluster.Task.setting)
    | Error e -> Alcotest.failf "round-trip failed: %s" e
  done

let test_task_rejects_bad_json () =
  let bad =
    [
      J.Null;
      J.Obj [ ("program", J.Str "crc") ];
      J.Obj [ ("program", J.Int 3); ("setting", J.List []) ];
      J.Obj
        [
          ("program", J.Str "crc");
          (* Wrong arity: settings are fixed-width flag vectors. *)
          ("setting", J.List [ J.Int 1; J.Int 0 ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      match Cluster.Task.of_json j with
      | Ok _ -> Alcotest.failf "accepted %s" (J.to_string j)
      | Error _ -> ())
    bad

let test_task_key_is_store_key () =
  let spec = Workloads.Mibench.by_name "crc" in
  let program = Workloads.Mibench.program_of spec in
  let pd = Store.program_digest program in
  let t = { Cluster.Task.program = "crc"; setting = F.o3 } in
  check Alcotest.string "task key = store profile key"
    (Store.profile_key ~program_digest:pd ~setting:F.o3)
    (Cluster.Task.key ~program_digest:pd t)

(* ---- wire codec -------------------------------------------------------- *)

let coordinator_msgs rng =
  [
    Cluster.Wire.Register
      { name = "w-1"; pid = 4242; fingerprint = Passes.Driver.fingerprint };
    Cluster.Wire.Heartbeat;
    Cluster.Wire.Result
      {
        job = 3;
        lease = 17;
        task = 5;
        key = "deadbeef";
        checksum = "fnv1a:0123";
        run = J.Obj [ ("seconds", J.Float 1.5) ];
      };
    Cluster.Wire.Task_error
      { job = 3; lease = 17; task = 6; error = "unknown workload" };
    Cluster.Wire.Lease_done { job = 3; lease = 17 };
    Cluster.Wire.Metrics_query;
    Cluster.Wire.Register
      {
        name = String.make 64 'x';
        pid = 1;
        fingerprint = F.cache_key (F.random rng);
      };
  ]

let worker_msgs rng =
  [
    Cluster.Wire.Welcome { worker = 7 };
    Cluster.Wire.Reject { reason = "fingerprint mismatch" };
    Cluster.Wire.Lease
      {
        job = 1;
        lease = 2;
        deadline_s = 30.0;
        tasks =
          [
            (0, { Cluster.Task.program = "crc"; setting = F.o3 });
            (3, { Cluster.Task.program = "sha"; setting = F.random rng });
          ];
        trace =
          Some { Obs.Span.trace_id = "cafe01"; process = "portopt-1"; span = Some 42 };
      };
    Cluster.Wire.Lease
      { job = 0; lease = 0; deadline_s = 0.5; tasks = []; trace = None };
    Cluster.Wire.Metrics
      { snapshot = J.Obj [ ("counters", J.Obj [ ("x", J.Int 1) ]) ] };
    Cluster.Wire.Quit;
  ]

let reparse j =
  match J.of_string (J.to_string j) with
  | Ok v -> v
  | Error e -> Alcotest.failf "serialised json does not parse: %s" e

let test_wire_roundtrip () =
  let rng = Prelude.Rng.create 5 in
  List.iter
    (fun m ->
      match
        Cluster.Wire.to_coordinator_of_json
          (reparse (Cluster.Wire.to_coordinator_to_json m))
      with
      | Ok m' ->
        check Alcotest.bool "to_coordinator round-trip" true (m = m')
      | Error e -> Alcotest.failf "to_coordinator failed: %s" e)
    (coordinator_msgs rng);
  List.iter
    (fun m ->
      match
        Cluster.Wire.to_worker_of_json
          (reparse (Cluster.Wire.to_worker_to_json m))
      with
      | Ok m' -> check Alcotest.bool "to_worker round-trip" true (m = m')
      | Error e -> Alcotest.failf "to_worker failed: %s" e)
    (worker_msgs rng)

let test_wire_rejects_bad_json () =
  let bad =
    [
      J.Null;
      J.Obj [];
      J.Obj [ ("type", J.Str "no-such-message") ];
      J.Obj [ ("type", J.Int 3) ];
      (* Register with a missing field. *)
      J.Obj [ ("type", J.Str "register"); ("name", J.Str "w") ];
      (* Result with a mistyped task index. *)
      J.Obj
        [
          ("type", J.Str "result");
          ("job", J.Int 0);
          ("lease", J.Int 0);
          ("task", J.Str "zero");
          ("key", J.Str "k");
          ("checksum", J.Str "c");
          ("run", J.Obj []);
        ];
    ]
  in
  List.iter
    (fun j ->
      match Cluster.Wire.to_coordinator_of_json j with
      | Ok _ -> Alcotest.failf "to_coordinator accepted %s" (J.to_string j)
      | Error _ -> ())
    bad;
  List.iter
    (fun j ->
      match Cluster.Wire.to_worker_of_json j with
      | Ok _ -> Alcotest.failf "to_worker accepted %s" (J.to_string j)
      | Error _ -> ())
    [
      J.Null;
      J.Obj [ ("type", J.Str "lease"); ("job", J.Int 0) ];
      J.Obj
        [
          ("type", J.Str "lease");
          ("job", J.Int 0);
          ("lease", J.Int 0);
          ("deadline_s", J.Float 1.0);
          ("tasks", J.List [ J.Int 3 ]);
        ];
    ]

(* ---- chaos ------------------------------------------------------------- *)

let test_chaos_spec_roundtrip () =
  let specs =
    [
      Cluster.Chaos.none;
      { Cluster.Chaos.seed = 7; drop = 0.05; delay = 0.1;
        max_delay_s = 0.02; garble = 0.05; kill = 0.01 };
      { Cluster.Chaos.seed = 0; drop = 1.0; delay = 0.0; max_delay_s = 0.0;
        garble = 0.0; kill = 0.0 };
    ]
  in
  List.iter
    (fun c ->
      match Cluster.Chaos.of_string (Cluster.Chaos.to_string c) with
      | Ok c' -> check Alcotest.bool "spec round-trip" true (c = c')
      | Error e -> Alcotest.failf "round-trip failed: %s" e)
    specs

let test_chaos_rejects_bad_specs () =
  List.iter
    (fun s ->
      match Cluster.Chaos.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "bogus=1"; "drop=nope"; "drop=1.5"; "kill=-0.1"; "seed=x"; "=" ]

let test_chaos_instance_deterministic () =
  (* Same seed and salt: identical decision streams.  Different salt:
     (almost surely) a different stream. *)
  let cfg =
    { Cluster.Chaos.seed = 99; drop = 0.3; delay = 0.3; max_delay_s = 0.01;
      garble = 0.3; kill = 0.1 }
  in
  let play salt =
    let i = Cluster.Chaos.instance cfg ~salt in
    List.init 200 (fun n ->
        let kill = Cluster.Chaos.should_kill i in
        let t =
          match Cluster.Chaos.transform i (Printf.sprintf "msg-%d" n) with
          | `Drop -> "drop"
          | `Send (line, delay) -> Printf.sprintf "%s@%f" line delay
        in
        (kill, t))
  in
  check Alcotest.bool "replay identical" true (play "alpha" = play "alpha");
  check Alcotest.bool "salt changes the stream" true
    (play "alpha" <> play "beta")

let test_chaos_garble_preserves_framing () =
  let cfg =
    { Cluster.Chaos.seed = 3; drop = 0.0; delay = 0.0; max_delay_s = 0.0;
      garble = 1.0; kill = 0.0 }
  in
  let i = Cluster.Chaos.instance cfg ~salt:"w" in
  for n = 0 to 99 do
    let line = Printf.sprintf "{\"type\":\"heartbeat\",\"n\":%d}" n in
    match Cluster.Chaos.transform i line with
    | `Drop -> Alcotest.fail "drop with drop=0"
    | `Send (out, _) ->
      check Alcotest.int "length preserved" (String.length line)
        (String.length out);
      if String.contains out '\n' then
        Alcotest.fail "garble injected a newline"
  done

(* ---- coordinator/worker end-to-end ------------------------------------- *)

(* A tiny grid: 2 programs x 3 settings, with one setting shared so the
   coordinator's dedupe-by-key path is exercised. *)
let grid rng =
  let s1 = F.random rng and s2 = F.random rng in
  [|
    (Workloads.Mibench.by_name "crc", [| F.o3; s1; s2 |]);
    (Workloads.Mibench.by_name "sha", [| s1; F.o3; F.random rng |]);
  |]

let ground_truth groups =
  Array.map
    (fun (spec, settings) ->
      let program = Workloads.Mibench.program_of spec in
      Array.map (fun setting -> X.profile_of ~setting program) settings)
    groups

let check_results_identical expected got =
  check Alcotest.int "group count" (Array.length expected) (Array.length got);
  Array.iteri
    (fun g exp ->
      check Alcotest.int "runs per group" (Array.length exp)
        (Array.length got.(g));
      Array.iteri
        (fun i r ->
          if r <> got.(g).(i) then
            Alcotest.failf "group %d run %d differs from local evaluation" g i)
        exp)
    expected

(* Run [f coord] with [n] in-process workers (each on its own thread,
   talking over the real socket) and a fast-recovery config.
   [stagger] delays worker [i] by [i * stagger] seconds, so a test can
   guarantee worker 0 registers first and wins the first lease. *)
let with_cluster ?store ?(chaos = Array.make 8 Cluster.Chaos.none)
    ?(stagger = 0.0) n f =
  let cfg =
    {
      (Cluster.Coordinator.config ()) with
      Cluster.Coordinator.lease_size = 2;
      lease_timeout_s = 2.0;
      heartbeat_timeout_s = 2.0;
      register_timeout_s = 10.0;
    }
  in
  let coord = Cluster.Coordinator.create ?store cfg in
  Fun.protect
    ~finally:(fun () -> Cluster.Coordinator.shutdown coord)
    (fun () ->
      let address = Cluster.Coordinator.address coord in
      let stop = Atomic.make false in
      let outcomes = Array.make n Cluster.Worker.Drained in
      let threads =
        Array.init n (fun i ->
            Thread.create
              (fun () ->
                if stagger > 0.0 then Thread.delay (float_of_int i *. stagger);
                let wc =
                  {
                    (Cluster.Worker.config ~connect:address
                       ~name:(Printf.sprintf "t%d" i))
                    with
                    Cluster.Worker.chaos = chaos.(i);
                    heartbeat_s = 0.2;
                  }
                in
                outcomes.(i) <-
                  Cluster.Worker.run ~stop:(fun () -> Atomic.get stop) wc)
              ())
      in
      let result = f coord in
      Atomic.set stop true;
      Array.iter Thread.join threads;
      (result, outcomes))

let test_cluster_matches_local_one_worker () =
  let rng = Prelude.Rng.create 31 in
  let groups = grid rng in
  let expected = ground_truth groups in
  let got, _ =
    with_cluster 1 (fun coord -> Cluster.Coordinator.evaluate coord groups)
  in
  check_results_identical expected got

let test_cluster_matches_local_two_workers () =
  let rng = Prelude.Rng.create 31 in
  let groups = grid rng in
  let expected = ground_truth groups in
  let ticks = ref [] in
  let got, _ =
    with_cluster 2 (fun coord ->
        Cluster.Coordinator.evaluate
          ~tick:(fun ~done_ ~total -> ticks := (done_, total) :: !ticks)
          coord groups)
  in
  check_results_identical expected got;
  (* Progress reached completion and total counts deduped tasks. *)
  let done_, total = List.hd !ticks in
  check Alcotest.int "final tick complete" total done_;
  (* 6 requested, one setting shared across the two programs — but only
     dedup-by-key within identical programs counts; distinct programs
     never collide, so total here is the requested 6. *)
  check Alcotest.int "task total" 6 total

let test_cluster_matches_local_under_chaos () =
  let rng = Prelude.Rng.create 47 in
  let groups = grid rng in
  let expected = ground_truth groups in
  let chaos =
    Array.init 8 (fun i ->
        {
          Cluster.Chaos.seed = 7 + i;
          drop = 0.15;
          delay = 0.3;
          max_delay_s = 0.02;
          garble = 0.15;
          kill = 0.0;
        })
  in
  let got, _ =
    with_cluster ~chaos 2 (fun coord ->
        Cluster.Coordinator.evaluate coord groups)
  in
  check_results_identical expected got

let test_cluster_survives_killed_worker () =
  (* One of two workers is chaos-killed mid-lease; the run completes on
     the survivor and stays identical to local evaluation.  Worker 0
     starts first (staggered) so it is guaranteed the first lease, and
     kill=1.0 makes its first task fatal — deterministic under any
     scheduler load, where a probabilistic kill raced the survivor for
     the lease and sometimes never fired. *)
  let rng = Prelude.Rng.create 53 in
  let groups = grid rng in
  let expected = ground_truth groups in
  let chaos = Array.make 8 Cluster.Chaos.none in
  chaos.(0) <-
    {
      Cluster.Chaos.seed = 13;
      drop = 0.0;
      delay = 0.0;
      max_delay_s = 0.0;
      garble = 0.0;
      kill = 1.0;
    };
  let got, outcomes =
    with_cluster ~chaos ~stagger:0.3 2 (fun coord ->
        Cluster.Coordinator.evaluate coord groups)
  in
  check_results_identical expected got;
  check Alcotest.string "chaos worker died" "killed"
    (Cluster.Worker.outcome_to_string outcomes.(0));
  check Alcotest.string "survivor drained" "drained"
    (Cluster.Worker.outcome_to_string outcomes.(1))

let test_cluster_store_warm_rerun_ships_nothing () =
  let rng = Prelude.Rng.create 61 in
  let groups = grid rng in
  let expected = ground_truth groups in
  let store = Store.open_ ~dir:(tmp_dir "warm_store") in
  let hits = Obs.Metrics.counter "cluster.store_hits" in
  let got, _ =
    with_cluster ~store 1 (fun coord ->
        Cluster.Coordinator.evaluate coord groups)
  in
  check_results_identical expected got;
  let before = Obs.Metrics.value hits in
  (* Second coordinator over the same store: every task is warmed, so
     evaluate completes without any worker at all. *)
  let cfg =
    {
      (Cluster.Coordinator.config ()) with
      Cluster.Coordinator.register_timeout_s = 5.0;
    }
  in
  let coord = Cluster.Coordinator.create ~store cfg in
  Fun.protect
    ~finally:(fun () -> Cluster.Coordinator.shutdown coord)
    (fun () ->
      let got2 = Cluster.Coordinator.evaluate coord groups in
      check_results_identical expected got2);
  check Alcotest.int "all 6 tasks answered from the store" 6
    (Obs.Metrics.value hits - before)

let test_coordinator_tolerates_garbage_then_registers () =
  (* A raw connection sends a garbage line; the coordinator must not
     die, and a subsequent honest registration must still be welcomed. *)
  let cfg = Cluster.Coordinator.config () in
  let coord = Cluster.Coordinator.create cfg in
  Fun.protect
    ~finally:(fun () -> Cluster.Coordinator.shutdown coord)
    (fun () ->
      let address = Cluster.Coordinator.address coord in
      let fd =
        Unix.socket (Unix.domain_of_sockaddr
                       (Serve.Protocol.sockaddr address))
          Unix.SOCK_STREAM 0
      in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Unix.connect fd (Serve.Protocol.sockaddr address);
          Serve.Frame.write_line fd "this is not json {{{";
          Serve.Frame.write_line fd
            (J.to_string
               (Cluster.Wire.to_coordinator_to_json
                  (Cluster.Wire.Register
                     {
                       name = "late-but-honest";
                       pid = Unix.getpid ();
                       fingerprint = Passes.Driver.fingerprint;
                     })));
          let reader = Serve.Frame.reader fd in
          match Serve.Frame.read reader with
          | Ok line -> (
            match
              Result.bind (J.of_string line) Cluster.Wire.to_worker_of_json
            with
            | Ok (Cluster.Wire.Welcome _) -> ()
            | Ok _ -> Alcotest.fail "expected welcome"
            | Error e -> Alcotest.failf "unparseable reply: %s" e)
          | Error e ->
            Alcotest.failf "no reply: %s" (Serve.Frame.error_to_string e)))

let test_coordinator_rejects_fingerprint_mismatch () =
  let cfg = Cluster.Coordinator.config () in
  let coord = Cluster.Coordinator.create cfg in
  Fun.protect
    ~finally:(fun () -> Cluster.Coordinator.shutdown coord)
    (fun () ->
      let address = Cluster.Coordinator.address coord in
      let fd =
        Unix.socket (Unix.domain_of_sockaddr
                       (Serve.Protocol.sockaddr address))
          Unix.SOCK_STREAM 0
      in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Unix.connect fd (Serve.Protocol.sockaddr address);
          Serve.Frame.write_line fd
            (J.to_string
               (Cluster.Wire.to_coordinator_to_json
                  (Cluster.Wire.Register
                     {
                       name = "imposter";
                       pid = Unix.getpid ();
                       fingerprint = "not-the-pipeline";
                     })));
          let reader = Serve.Frame.reader fd in
          match Serve.Frame.read reader with
          | Ok line -> (
            match
              Result.bind (J.of_string line) Cluster.Wire.to_worker_of_json
            with
            | Ok (Cluster.Wire.Reject _) -> ()
            | Ok _ -> Alcotest.fail "expected reject"
            | Error e -> Alcotest.failf "unparseable reply: %s" e)
          | Error e ->
            Alcotest.failf "no reply: %s" (Serve.Frame.error_to_string e)))

(* ---- offload backend through Dataset/Crossval -------------------------- *)

let offload_scale =
  {
    Ml_model.Dataset.n_uarchs = 2;
    n_opts = 6;
    seed = 29;
    space = Ml_model.Features.Base;
    good_fraction = 0.2;
  }

let check_datasets_identical (a : Ml_model.Dataset.t)
    (b : Ml_model.Dataset.t) =
  check Alcotest.bool "settings" true
    (a.Ml_model.Dataset.settings = b.Ml_model.Dataset.settings);
  check Alcotest.bool "o3 runs" true
    (a.Ml_model.Dataset.o3_runs = b.Ml_model.Dataset.o3_runs);
  check Alcotest.bool "runs" true
    (a.Ml_model.Dataset.runs = b.Ml_model.Dataset.runs);
  check Alcotest.bool "digests" true
    (a.Ml_model.Dataset.prog_digests = b.Ml_model.Dataset.prog_digests);
  check Alcotest.int "pairs"
    (Array.length a.Ml_model.Dataset.pairs)
    (Array.length b.Ml_model.Dataset.pairs);
  Array.iteri
    (fun i (pa : Ml_model.Dataset.pair) ->
      let pb = b.Ml_model.Dataset.pairs.(i) in
      check Alcotest.bool "pair features" true
        (pa.Ml_model.Dataset.features_raw = pb.Ml_model.Dataset.features_raw);
      check Alcotest.bool "pair times" true
        (pa.Ml_model.Dataset.times = pb.Ml_model.Dataset.times))
    a.Ml_model.Dataset.pairs

let test_offload_dataset_identical () =
  let local = Ml_model.Dataset.generate offload_scale in
  let offloaded, _ =
    with_cluster 2 (fun coord ->
        Ml_model.Dataset.generate
          ~backend:
            (Ml_model.Dataset.Offload
               (fun groups -> Cluster.Coordinator.evaluate coord groups))
          offload_scale)
  in
  check_datasets_identical local offloaded

let test_offload_crossval_identical () =
  let local_d = Ml_model.Dataset.generate offload_scale in
  let local = Ml_model.Crossval.run local_d in
  let offloaded, _ =
    with_cluster 2 (fun coord ->
        let backend =
          Ml_model.Dataset.Offload
            (fun groups -> Cluster.Coordinator.evaluate coord groups)
        in
        let d = Ml_model.Dataset.generate ~backend offload_scale in
        Ml_model.Crossval.run ~backend d)
  in
  check Alcotest.int "outcome count" (Array.length local)
    (Array.length offloaded);
  Array.iteri
    (fun i (a : Ml_model.Crossval.outcome) ->
      let b = offloaded.(i) in
      check Alcotest.int "prog" a.Ml_model.Crossval.prog
        b.Ml_model.Crossval.prog;
      check Alcotest.int "uarch" a.Ml_model.Crossval.uarch
        b.Ml_model.Crossval.uarch;
      check Alcotest.bool "predicted setting" true
        (a.Ml_model.Crossval.predicted = b.Ml_model.Crossval.predicted);
      check Alcotest.bool "predicted seconds bit-identical" true
        (a.Ml_model.Crossval.predicted_seconds
        = b.Ml_model.Crossval.predicted_seconds))
    local

(* ---- worker odds and ends ---------------------------------------------- *)

let test_parse_connect () =
  (match Cluster.Worker.parse_connect "127.0.0.1:8400" with
  | Ok (Serve.Protocol.Tcp ("127.0.0.1", 8400)) -> ()
  | Ok _ -> Alcotest.fail "wrong address"
  | Error e -> Alcotest.failf "tcp parse failed: %s" e);
  (match Cluster.Worker.parse_connect "/tmp/cluster.sock" with
  | Ok (Serve.Protocol.Unix_path "/tmp/cluster.sock") -> ()
  | Ok _ -> Alcotest.fail "wrong address"
  | Error e -> Alcotest.failf "unix parse failed: %s" e);
  List.iter
    (fun s ->
      match Cluster.Worker.parse_connect s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "nohost"; "host:notaport"; "" ]

let test_worker_gives_up_when_no_coordinator () =
  (* Nothing listening: the reconnect budget must run out and report
     Lost (not hang, not raise). *)
  let wc =
    {
      (Cluster.Worker.config
         ~connect:(Serve.Protocol.Unix_path (tmp_path "nobody_home.sock"))
         ~name:"orphan")
      with
      Cluster.Worker.reconnect =
        {
          Prelude.Backoff.base_s = 0.01;
          factor = 1.5;
          max_s = 0.05;
          jitter = 0.0;
          max_retries = 2;
        };
    }
  in
  check Alcotest.string "lost" "lost"
    (Cluster.Worker.outcome_to_string (Cluster.Worker.run wc))

let () =
  Alcotest.run "cluster"
    [
      ( "task",
        [
          Alcotest.test_case "round-trip" `Quick test_task_roundtrip;
          Alcotest.test_case "rejects bad json" `Quick
            test_task_rejects_bad_json;
          Alcotest.test_case "key is the store key" `Quick
            test_task_key_is_store_key;
        ] );
      ( "wire",
        [
          Alcotest.test_case "round-trip" `Quick test_wire_roundtrip;
          Alcotest.test_case "rejects bad json" `Quick
            test_wire_rejects_bad_json;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "spec round-trip" `Quick
            test_chaos_spec_roundtrip;
          Alcotest.test_case "rejects bad specs" `Quick
            test_chaos_rejects_bad_specs;
          Alcotest.test_case "instance deterministic" `Quick
            test_chaos_instance_deterministic;
          Alcotest.test_case "garble preserves framing" `Quick
            test_chaos_garble_preserves_framing;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "matches local, one worker" `Slow
            test_cluster_matches_local_one_worker;
          Alcotest.test_case "matches local, two workers" `Slow
            test_cluster_matches_local_two_workers;
          Alcotest.test_case "matches local under chaos" `Slow
            test_cluster_matches_local_under_chaos;
          Alcotest.test_case "survives a killed worker" `Slow
            test_cluster_survives_killed_worker;
          Alcotest.test_case "store-warm rerun ships nothing" `Slow
            test_cluster_store_warm_rerun_ships_nothing;
          Alcotest.test_case "tolerates garbage before register" `Quick
            test_coordinator_tolerates_garbage_then_registers;
          Alcotest.test_case "rejects fingerprint mismatch" `Quick
            test_coordinator_rejects_fingerprint_mismatch;
        ] );
      ( "offload",
        [
          Alcotest.test_case "dataset identical to in-process" `Slow
            test_offload_dataset_identical;
          Alcotest.test_case "crossval identical to in-process" `Slow
            test_offload_crossval_identical;
        ] );
      ( "worker",
        [
          Alcotest.test_case "parse connect" `Quick test_parse_connect;
          Alcotest.test_case "gives up without a coordinator" `Quick
            test_worker_gives_up_when_no_coordinator;
        ] );
    ]
