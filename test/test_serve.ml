(* Tests for the serving subsystem: the LRU cache, the async pool path,
   model artifacts (round-trip bit-identity, strict load validation,
   load-vs-retrain speed), the wire protocol, and the server itself —
   concurrent end-to-end queries, the prediction cache, load shedding
   and graceful drain. *)

module J = Obs.Json

let check = Alcotest.check

(* ---- LRU --------------------------------------------------------------- *)

let test_lru_capacity_and_eviction () =
  let l = Serve.Lru.create ~capacity:3 in
  Serve.Lru.put l "a" 1;
  Serve.Lru.put l "b" 2;
  Serve.Lru.put l "c" 3;
  check Alcotest.int "size" 3 (Serve.Lru.size l);
  Serve.Lru.put l "d" 4;
  check Alcotest.int "still at capacity" 3 (Serve.Lru.size l);
  check Alcotest.(option int) "oldest evicted" None (Serve.Lru.get l "a");
  check Alcotest.(option int) "newest kept" (Some 4) (Serve.Lru.get l "d")

let test_lru_get_promotes () =
  let l = Serve.Lru.create ~capacity:2 in
  Serve.Lru.put l "a" 1;
  Serve.Lru.put l "b" 2;
  (* Touch "a" so "b" becomes the eviction victim. *)
  ignore (Serve.Lru.get l "a");
  Serve.Lru.put l "c" 3;
  check Alcotest.(option int) "promoted key kept" (Some 1) (Serve.Lru.get l "a");
  check Alcotest.(option int) "lru evicted" None (Serve.Lru.get l "b");
  check
    Alcotest.(list string)
    "most-recent first" [ "a"; "c" ]
    (Serve.Lru.keys_by_recency l)

let test_lru_overwrite () =
  let l = Serve.Lru.create ~capacity:2 in
  Serve.Lru.put l "a" 1;
  Serve.Lru.put l "a" 9;
  check Alcotest.int "no duplicate" 1 (Serve.Lru.size l);
  check Alcotest.(option int) "newest value" (Some 9) (Serve.Lru.get l "a")

let test_lru_counters () =
  let l = Serve.Lru.create ~capacity:2 in
  Serve.Lru.put l "a" 1;
  ignore (Serve.Lru.get l "a");
  ignore (Serve.Lru.get l "a");
  ignore (Serve.Lru.get l "nope");
  check Alcotest.int "hits" 2 (Serve.Lru.hits l);
  check Alcotest.int "misses" 1 (Serve.Lru.misses l)

let test_lru_bad_capacity () =
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Lru.create: capacity must be >= 1") (fun () ->
      ignore (Serve.Lru.create ~capacity:0))

(* ---- Pool async path --------------------------------------------------- *)

let await_atomic ?(timeout = 5.0) a expected =
  let t0 = Unix.gettimeofday () in
  while
    Atomic.get a <> expected && Unix.gettimeofday () -. t0 < timeout
  do
    Thread.yield ()
  done;
  Atomic.get a

let test_pool_submit_runs_tasks () =
  let pool = Prelude.Pool.create ~jobs:3 in
  Fun.protect
    ~finally:(fun () -> Prelude.Pool.shutdown pool)
    (fun () ->
      let hits = Atomic.make 0 in
      for _ = 1 to 20 do
        Prelude.Pool.submit pool (fun () -> Atomic.incr hits)
      done;
      check Alcotest.int "all async tasks ran" 20 (await_atomic hits 20);
      check Alcotest.int "queue drained" 0 (Prelude.Pool.pending pool))

let test_pool_submit_inline_when_sequential () =
  let pool = Prelude.Pool.create ~jobs:1 in
  Fun.protect
    ~finally:(fun () -> Prelude.Pool.shutdown pool)
    (fun () ->
      let hit = Atomic.make 0 in
      Prelude.Pool.submit pool (fun () -> Atomic.incr hit);
      (* jobs=1 has no worker domains: the task ran before submit
         returned. *)
      check Alcotest.int "ran inline" 1 (Atomic.get hit))

(* ---- datasets and artifacts -------------------------------------------- *)

let tiny_scale seed =
  {
    Ml_model.Dataset.n_uarchs = 2;
    n_opts = 8;
    seed;
    space = Ml_model.Features.Base;
    good_fraction = 0.1;
  }

(* Wall seconds spent generating the seed-42 dataset — the honest
   "retrain from nothing" cost the artifact load is measured against. *)
let gen42_seconds = ref 0.0

let dataset42 =
  lazy
    (let t0 = Unix.gettimeofday () in
     let d = Ml_model.Dataset.generate (tiny_scale 42) in
     gen42_seconds := Unix.gettimeofday () -. t0;
     d)

let dataset43 = lazy (Ml_model.Dataset.generate (tiny_scale 43))

let artifact_of dataset =
  let model = Ml_model.Model.train dataset in
  {
    Serve.Artifact.model;
    space = dataset.Ml_model.Dataset.scale.Ml_model.Dataset.space;
    meta = [ ("suite", J.Str "test") ];
  }

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "portopt_test_%d_%s" (Unix.getpid ()) name)

let all_raw_features dataset =
  Array.map
    (fun (p : Ml_model.Dataset.pair) -> p.Ml_model.Dataset.features_raw)
    dataset.Ml_model.Dataset.pairs

let check_models_bit_identical ~msg model loaded features =
  Array.iteri
    (fun i x ->
      let a = Ml_model.Model.predict_full model x in
      let b = Ml_model.Model.predict_full loaded x in
      if a.Ml_model.Predict.setting <> b.Ml_model.Predict.setting then
        Alcotest.failf "%s: setting differs on pair %d" msg i;
      if a.Ml_model.Predict.distribution <> b.Ml_model.Predict.distribution
      then Alcotest.failf "%s: distribution differs on pair %d" msg i;
      if a.Ml_model.Predict.neighbours <> b.Ml_model.Predict.neighbours then
        Alcotest.failf "%s: neighbours differ on pair %d" msg i)
    features

let test_artifact_roundtrip_bit_identical () =
  List.iter
    (fun (seed, dataset) ->
      let dataset = Lazy.force dataset in
      let artifact = artifact_of dataset in
      let path = tmp_path (Printf.sprintf "roundtrip_%d.pcm" seed) in
      Serve.Artifact.save ~path artifact;
      let loaded =
        match Serve.Artifact.load ~path with
        | Ok a -> a
        | Error e -> Alcotest.failf "load failed: %s" e
      in
      Sys.remove path;
      check Alcotest.int "k survives"
        (Ml_model.Model.k artifact.Serve.Artifact.model)
        (Ml_model.Model.k loaded.Serve.Artifact.model);
      check Alcotest.int "pairs survive"
        (Ml_model.Model.n_points artifact.Serve.Artifact.model)
        (Ml_model.Model.n_points loaded.Serve.Artifact.model);
      check Alcotest.bool "meta survives" true
        (loaded.Serve.Artifact.meta = artifact.Serve.Artifact.meta);
      check_models_bit_identical
        ~msg:(Printf.sprintf "seed %d" seed)
        artifact.Serve.Artifact.model loaded.Serve.Artifact.model
        (all_raw_features dataset))
    [ (42, dataset42); (43, dataset43) ]

let test_artifact_load_is_fast () =
  let dataset = Lazy.force dataset42 in
  let t0 = Unix.gettimeofday () in
  let model = Ml_model.Model.train dataset in
  let train_seconds = !gen42_seconds +. (Unix.gettimeofday () -. t0) in
  let path = tmp_path "speed.pcm" in
  Serve.Artifact.save ~path
    { Serve.Artifact.model; space = Ml_model.Features.Base; meta = [] };
  (* Warm the page cache, then time the load. *)
  ignore (Serve.Artifact.load ~path);
  let t0 = Unix.gettimeofday () in
  (match Serve.Artifact.load ~path with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "load failed: %s" e);
  let load_seconds = Unix.gettimeofday () -. t0 in
  Sys.remove path;
  if train_seconds < 100.0 *. load_seconds then
    Alcotest.failf
      "artifact load must be >= 100x faster than retraining: train+gen \
       %.3fs, load %.3fs (%.0fx)"
      train_seconds load_seconds
      (train_seconds /. load_seconds)

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let load_error path =
  match Serve.Artifact.load ~path with
  | Ok _ -> Alcotest.failf "%s: load unexpectedly succeeded" path
  | Error e -> e

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let check_error_mentions ~msg needle err =
  if not (contains ~needle err) then
    Alcotest.failf "%s: error %S does not mention %S" msg err needle

(* First-occurrence textual replacement (no Str dependency). *)
let replace ~from ~into text =
  let n = String.length text and fn = String.length from in
  let rec find i =
    if i + fn > n then None
    else if String.sub text i fn = from then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> text
  | Some i ->
    String.sub text 0 i ^ into
    ^ String.sub text (i + fn) (n - i - fn)

let test_artifact_rejects_corruption () =
  let dataset = Lazy.force dataset42 in
  let artifact = artifact_of dataset in
  let path = tmp_path "negative.pcm" in
  Serve.Artifact.save ~path artifact;
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let header_len = String.index text '\n' in

  (* Truncated: payload shorter than the header's byte count. *)
  write_file path (String.sub text 0 (String.length text / 2));
  check_error_mentions ~msg:"truncation" "truncated" (load_error path);

  (* Corrupted payload: flip a digit after the header. *)
  let corrupt = Bytes.of_string text in
  let i = header_len + 100 in
  Bytes.set corrupt i (if Bytes.get corrupt i = '1' then '2' else '1');
  write_file path (Bytes.to_string corrupt);
  check_error_mentions ~msg:"bit flip" "checksum mismatch" (load_error path);

  (* Wrong schema version. *)
  write_file path
    (replace ~from:"\"version\":2" ~into:"\"version\":99" text);
  check_error_mentions ~msg:"future version" "unsupported artifact version 99"
    (load_error path);

  (* Wrong magic. *)
  write_file path (replace ~from:"portopt-model" ~into:"someone-elses" text);
  check_error_mentions ~msg:"foreign file" "not a portopt model artifact"
    (load_error path);

  (* Not even JSON. *)
  write_file path "ELF\x7f\x00\x00";
  check_error_mentions ~msg:"garbage" "header" (load_error path);

  (* Empty. *)
  write_file path "";
  check_error_mentions ~msg:"empty" "truncated" (load_error path);
  Sys.remove path;

  (* Missing entirely. *)
  ignore (load_error (tmp_path "does_not_exist.pcm"))

(* ---- artifact versioning: v1 compatibility, frozen index --------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Rewrites a saved artifact with a transformed payload and a
   regenerated, internally consistent version-[version] header — how
   the tests manufacture version-1 files and index corruption without
   tripping the checksum first. *)
let rewrite_artifact ~path ~version transform =
  let text = read_file path in
  let nl = String.index text '\n' in
  let payload_line = String.sub text (nl + 1) (String.length text - nl - 2) in
  let payload =
    match J.of_string payload_line with
    | Ok j -> J.to_string (transform j)
    | Error e -> Alcotest.failf "payload unparseable: %s" e
  in
  let header =
    J.to_string
      (J.Obj
         [
           ("magic", J.Str "portopt-model");
           ("version", J.Int version);
           ("checksum", J.Str (Prelude.Fnv.tagged_string payload));
           ("bytes", J.Int (String.length payload));
         ])
  in
  write_file path (header ^ "\n" ^ payload ^ "\n")

let test_artifact_saves_frozen_index () =
  let artifact = artifact_of (Lazy.force dataset42) in
  let path = tmp_path "frozen.pcm" in
  Serve.Artifact.save ~path artifact;
  let text = read_file path in
  Sys.remove path;
  check Alcotest.bool "payload carries the index" true
    (contains ~needle:"\"index\":" text);
  check Alcotest.bool "header declares version 2" true
    (contains ~needle:"\"version\":2" text)

let test_artifact_v1_loads_and_rebuilds_index () =
  let dataset = Lazy.force dataset42 in
  let artifact = artifact_of dataset in
  let path = tmp_path "v1.pcm" in
  Serve.Artifact.save ~path artifact;
  (* A version-1 file is exactly a version-2 file without "index". *)
  rewrite_artifact ~path ~version:1 (function
    | J.Obj fields -> J.Obj (List.filter (fun (k, _) -> k <> "index") fields)
    | j -> j);
  let loaded =
    match Serve.Artifact.load ~path with
    | Ok a -> a
    | Error e -> Alcotest.failf "v1 load failed: %s" e
  in
  Sys.remove path;
  (* The rebuilt index must predict bit-identically to the frozen one. *)
  check_models_bit_identical ~msg:"v1 rebuilt index"
    artifact.Serve.Artifact.model loaded.Serve.Artifact.model
    (all_raw_features dataset)

let test_artifact_rejects_corrupt_index () =
  let artifact = artifact_of (Lazy.force dataset42) in
  let n = Ml_model.Model.n_points artifact.Serve.Artifact.model in
  let path = tmp_path "badindex.pcm" in
  let reload_with_index index =
    Serve.Artifact.save ~path artifact;
    rewrite_artifact ~path ~version:2 (function
      | J.Obj fields ->
        J.Obj
          (List.map
             (fun (k, v) -> if k = "index" then (k, index) else (k, v))
             fields)
      | j -> j);
    load_error path
  in
  (* A leaf covering only row 0: every other row is missing. *)
  check_error_mentions ~msg:"missing rows" "vptree"
    (reload_with_index (J.List [ J.Int 0 ]));
  (* A row index out of range. *)
  check_error_mentions ~msg:"out of range" "vptree"
    (reload_with_index (J.List (List.init (n + 1) (fun i -> J.Int i))));
  (* A row listed twice. *)
  check_error_mentions ~msg:"duplicate row" "vptree"
    (reload_with_index
       (J.List (J.Int 0 :: List.init n (fun i -> J.Int i))));
  (* Not a tree shape at all. *)
  check_error_mentions ~msg:"bad shape" "index"
    (reload_with_index (J.Str "zap"));
  Sys.remove path

(* ---- quantise: the cache-key kernel ------------------------------------ *)

let test_quantise_signed_zero_and_nan () =
  let q = Serve.Server.quantise in
  check Alcotest.string "-0.0 and 0.0 share a key" (q [| 0.0 |])
    (q [| -0.0 |]);
  check Alcotest.bool "grid rounding collapses 1e-9" true
    (q [| 1e-9 |] = q [| 0.0 |]);
  check Alcotest.bool "distinct values, distinct keys" true
    (q [| 1.0 |] <> q [| 2.0 |]);
  check Alcotest.bool "order matters" true (q [| 1.0; 2.0 |] <> q [| 2.0; 1.0 |]);
  (* Non-finite values are rejected at the protocol layer, but the key
     kernel must still be deterministic and collision-free on them
     rather than hitting unspecified Int64.of_float behaviour. *)
  check Alcotest.string "nan key is deterministic" (q [| Float.nan |])
    (q [| Float.nan |]);
  check Alcotest.bool "nan does not collide with zero" true
    (q [| Float.nan |] <> q [| 0.0 |]);
  check Alcotest.bool "infinities get distinct keys" true
    (q [| Float.infinity |] <> q [| Float.neg_infinity |]);
  check Alcotest.bool "huge finite does not collide with infinity" true
    (q [| 1e300 |] <> q [| Float.infinity |])

let some_uarch () =
  (Lazy.force dataset42).Ml_model.Dataset.uarchs.(0)

let some_counters () =
  let d = Lazy.force dataset42 in
  let v = Sim.Xtrem.time d.Ml_model.Dataset.o3_runs.(0) (some_uarch ()) in
  v.Sim.Pipeline.counters

let test_protocol_request_roundtrip () =
  let counters = some_counters () in
  let uarch = some_uarch () in
  let j =
    Serve.Protocol.request_to_json ~id:7
      (Serve.Protocol.Predict { counters; uarch; objective = None })
  in
  (* Through the printer and parser, as on the wire. *)
  let j =
    match J.of_string (J.to_string j) with Ok j -> j | Error e -> failwith e
  in
  (match Serve.Protocol.request_of_json j with
  | Ok (Serve.Protocol.Predict { counters = c; uarch = u; objective = None }) ->
    check Alcotest.bool "counters survive" true
      (Sim.Counters.to_array c = Sim.Counters.to_array counters);
    check Alcotest.bool "uarch survives" true (u = uarch)
  | Ok _ -> Alcotest.fail "decoded as a different op"
  | Error e -> Alcotest.failf "decode failed: %s" e);
  check Alcotest.bool "id echoed" true
    (Serve.Protocol.request_id j = Some (J.Int 7))

let test_protocol_rejects_bad_requests () =
  let bad s =
    match J.of_string s with
    | Error _ -> ()
    | Ok j -> (
      match Serve.Protocol.request_of_json j with
      | Ok _ -> Alcotest.failf "accepted %s" s
      | Error _ -> ())
  in
  bad {|{"op":"frobnicate"}|};
  bad {|{"op":"predict"}|};
  bad {|{"op":"predict","counters":[1,2,3],"uarch":{}}|};
  bad {|{"op":"predict","counters":"nope","uarch":{}}|}

let test_protocol_error_responses () =
  let e = Serve.Protocol.error_to_json ~code:429 "busy" in
  match Serve.Protocol.check_response e with
  | Ok _ -> Alcotest.fail "error response passed check_response"
  | Error (code, msg) ->
    check Alcotest.int "code" 429 code;
    check Alcotest.string "message" "busy" msg

let test_protocol_rejects_non_finite_counters () =
  (* JSON has no literal for infinity, but "1e999" overflows
     float_of_string into one — the parser lets it through, so the
     protocol layer must be the backstop. *)
  (match J.of_string "[1e999]" with
  | Ok (J.List [ j ]) ->
    (match J.to_float j with
    | Some f ->
      check Alcotest.bool "1e999 parses to an infinity" true
        (not (Float.is_finite f))
    | None -> Alcotest.fail "1e999 did not parse as a float")
  | Ok _ | Error _ -> Alcotest.fail "[1e999] did not parse as a list");
  let uarch = some_uarch () in
  let with_counter v =
    let counters =
      match Serve.Protocol.counters_to_json (some_counters ()) with
      | J.List (_ :: rest) -> J.List (v :: rest)
      | _ -> Alcotest.fail "counters did not encode as a list"
    in
    J.Obj
      [
        ("op", J.Str "predict");
        ("counters", counters);
        ("uarch", Serve.Protocol.uarch_to_json uarch);
      ]
  in
  (match Serve.Protocol.request_of_json (with_counter (J.Float Float.nan)) with
  | Ok _ -> Alcotest.fail "accepted a NaN counter"
  | Error e -> check_error_mentions ~msg:"nan counter" "non-finite" e);
  (match
     Serve.Protocol.request_of_json (with_counter (J.Float Float.infinity))
   with
  | Ok _ -> Alcotest.fail "accepted an infinite counter"
  | Error e -> check_error_mentions ~msg:"infinite counter" "non-finite" e);
  (* A finite vector still passes. *)
  match Serve.Protocol.request_of_json (with_counter (J.Float 0.5)) with
  | Ok (Serve.Protocol.Predict _) -> ()
  | Ok _ -> Alcotest.fail "decoded as a different op"
  | Error e -> Alcotest.failf "rejected a finite vector: %s" e

let test_protocol_batch_roundtrip_and_limits () =
  let counters = some_counters () and uarch = some_uarch () in
  let queries = Array.make 3 (counters, uarch) in
  let j =
    Serve.Protocol.request_to_json ~id:9
      (Serve.Protocol.Predict_batch { queries; objective = None })
  in
  let j =
    match J.of_string (J.to_string j) with Ok j -> j | Error e -> failwith e
  in
  (match Serve.Protocol.request_of_json j with
  | Ok (Serve.Protocol.Predict_batch { queries = qs; objective = None }) ->
    check Alcotest.int "all queries survive" 3 (Array.length qs);
    Array.iter
      (fun (c, u) ->
        check Alcotest.bool "counters survive" true
          (Sim.Counters.to_array c = Sim.Counters.to_array counters);
        check Alcotest.bool "uarch survives" true (u = uarch))
      qs
  | Ok _ -> Alcotest.fail "decoded as a different op"
  | Error e -> Alcotest.failf "decode failed: %s" e);
  (* An empty batch is meaningless; over max_batch is unbounded work on
     one admission slot — both rejected with a parse error. *)
  let reject msg queries needle =
    let j =
      Serve.Protocol.request_to_json
        (Serve.Protocol.Predict_batch { queries; objective = None })
    in
    match Serve.Protocol.request_of_json j with
    | Ok _ -> Alcotest.failf "accepted %s" msg
    | Error e -> check_error_mentions ~msg needle e
  in
  reject "an empty batch" [||] "empty";
  reject "an oversized batch"
    (Array.make (Serve.Protocol.max_batch + 1) (counters, uarch))
    "at most";
  (* A bad query deep in the vector is reported with its position. *)
  let j =
    match
      Serve.Protocol.request_to_json
        (Serve.Protocol.Predict_batch { queries; objective = None })
    with
    | J.Obj fields ->
      J.Obj
        (List.map
           (fun (k, v) ->
             match (k, v) with
             | "queries", J.List [ a; b; _ ] ->
               (k, J.List [ a; b; J.Obj [ ("counters", J.Str "nope") ] ])
             | _ -> (k, v))
           fields)
    | _ -> Alcotest.fail "batch request did not encode as an object"
  in
  match Serve.Protocol.request_of_json j with
  | Ok _ -> Alcotest.fail "accepted a malformed query"
  | Error e -> check_error_mentions ~msg:"positioned error" "query 2" e

(* ---- server end-to-end ------------------------------------------------- *)

let with_server ?(jobs = 2) ?(queue = 8) ?(cache = 256) ?(admin = false)
    ?(engine = Ml_model.Predict.Vptree) ?(split = 0.0) ?source ?watch
    ?candidate artifact f =
  let socket = tmp_path (Printf.sprintf "srv_%d.sock" (Random.bits ())) in
  let config =
    {
      Serve.Server.address = Serve.Protocol.Unix_path socket;
      jobs;
      queue;
      cache_capacity = cache;
      admin;
      engine;
      split;
      source;
      watch;
    }
  in
  let server = Serve.Server.start ?candidate ~artifact config in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Serve.Server.wait server;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () -> f server (Serve.Server.address server))

let test_server_concurrent_bit_identical () =
  let dataset = Lazy.force dataset42 in
  let artifact = artifact_of dataset in
  let model = artifact.Serve.Artifact.model in
  let n_uarchs = Ml_model.Dataset.n_uarchs dataset in
  let queries =
    Array.init 8 (fun i ->
        let p = i / n_uarchs and u = i mod n_uarchs in
        let uarch = dataset.Ml_model.Dataset.uarchs.(u) in
        let v = Sim.Xtrem.time dataset.Ml_model.Dataset.o3_runs.(p) uarch in
        (v.Sim.Pipeline.counters, uarch))
  in
  with_server artifact (fun _server address ->
      let failures = Atomic.make 0 in
      let worker ti =
        let client = Serve.Client.connect address in
        Fun.protect
          ~finally:(fun () -> Serve.Client.close client)
          (fun () ->
            for i = 0 to Array.length queries - 1 do
              let counters, uarch = queries.((ti + i) mod Array.length queries) in
              match Serve.Client.predict client ~counters ~uarch with
              | Error _ -> Atomic.incr failures
              | Ok served ->
                (* The served setting must be bit-identical to the
                   in-process prediction for the same model. *)
                let local =
                  Ml_model.Model.predict model
                    (Ml_model.Features.raw artifact.Serve.Artifact.space
                       counters uarch)
                in
                if served.Serve.Protocol.setting <> local then
                  Atomic.incr failures
            done)
      in
      let threads = Array.init 4 (fun ti -> Thread.create worker ti) in
      Array.iter Thread.join threads;
      check Alcotest.int "no failed or divergent requests" 0
        (Atomic.get failures);
      (* Every query has been seen: a repeat must be a cache hit. *)
      let client = Serve.Client.connect address in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close client)
        (fun () ->
          let counters, uarch = queries.(0) in
          (match Serve.Client.predict client ~counters ~uarch with
          | Ok served ->
            check Alcotest.bool "repeat served from cache" true
              served.Serve.Protocol.cached
          | Error (_, e) -> Alcotest.failf "repeat failed: %s" e);
          (* Health reflects the traffic. *)
          match Serve.Client.health client with
          | Error (_, e) -> Alcotest.failf "health failed: %s" e
          | Ok h ->
            let int_field name =
              match Option.bind (J.member name h) J.to_int with
              | Some v -> v
              | None -> Alcotest.failf "health lacks %s" name
            in
            check Alcotest.bool "served many requests" true
              (int_field "requests" >= 4 * Array.length queries);
            check Alcotest.int "nothing shed" 0 (int_field "shed");
            check Alcotest.int "nothing in flight" 0 (int_field "inflight");
            let cache = Option.get (J.member "cache" h) in
            (match Option.bind (J.member "hits" cache) J.to_int with
            | Some hits -> check Alcotest.bool "cache hits" true (hits >= 1)
            | None -> Alcotest.fail "health lacks cache.hits");
            (* Admin ops are refused without --admin. *)
            (match Serve.Client.sleep client 0.01 with
            | Error (403, _) -> ()
            | Ok _ -> Alcotest.fail "sleep accepted without --admin"
            | Error (code, e) ->
              Alcotest.failf "expected 403, got %d: %s" code e)))

(* The first [n] (program, configuration) pairs of a dataset as wire
   queries, in a fixed order shared by the batch tests. *)
let queries_of dataset n =
  let n_uarchs = Ml_model.Dataset.n_uarchs dataset in
  Array.init n (fun i ->
      let p = i / n_uarchs and u = i mod n_uarchs in
      let uarch = dataset.Ml_model.Dataset.uarchs.(u) in
      let v = Sim.Xtrem.time dataset.Ml_model.Dataset.o3_runs.(p) uarch in
      (v.Sim.Pipeline.counters, uarch))

let check_same_prediction ~msg (a : Serve.Protocol.prediction)
    (b : Serve.Protocol.prediction) =
  if a.Serve.Protocol.setting <> b.Serve.Protocol.setting then
    Alcotest.failf "%s: settings differ" msg;
  if a.Serve.Protocol.flags <> b.Serve.Protocol.flags then
    Alcotest.failf "%s: flags differ" msg;
  if a.Serve.Protocol.neighbours <> b.Serve.Protocol.neighbours then
    Alcotest.failf "%s: neighbours differ" msg

let test_server_batch_matches_singles ~jobs () =
  let dataset = Lazy.force dataset42 in
  let artifact = artifact_of dataset in
  let queries = queries_of dataset 8 in
  (* Cache off so the single-query answers are computed fresh, like the
     batch's. *)
  with_server ~jobs ~cache:0 artifact (fun _server address ->
      let client = Serve.Client.connect address in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close client)
        (fun () ->
          let singles =
            Array.map
              (fun (counters, uarch) ->
                match Serve.Client.predict client ~counters ~uarch with
                | Ok p -> p
                | Error (_, e) -> Alcotest.failf "single predict failed: %s" e)
              queries
          in
          match Serve.Client.predict_batch client queries with
          | Error (_, e) -> Alcotest.failf "batch predict failed: %s" e
          | Ok results ->
            check Alcotest.int "one result per query" (Array.length queries)
              (Array.length results);
            Array.iteri
              (fun i p ->
                check_same_prediction
                  ~msg:(Printf.sprintf "jobs %d, query %d" jobs i)
                  singles.(i) p)
              results))

let test_server_batch_cache_hits () =
  let dataset = Lazy.force dataset42 in
  let artifact = artifact_of dataset in
  let queries = queries_of dataset 6 in
  with_server artifact (fun _server address ->
      let client = Serve.Client.connect address in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close client)
        (fun () ->
          (* Warm exactly one query, then batch: that element must be a
             hit, the rest computed. *)
          let counters, uarch = queries.(2) in
          (match Serve.Client.predict client ~counters ~uarch with
          | Ok _ -> ()
          | Error (_, e) -> Alcotest.failf "warm-up failed: %s" e);
          (match Serve.Client.predict_batch client queries with
          | Error (_, e) -> Alcotest.failf "first batch failed: %s" e
          | Ok results ->
            Array.iteri
              (fun i p ->
                check Alcotest.bool
                  (Printf.sprintf "first batch, query %d cached flag" i)
                  (i = 2) p.Serve.Protocol.cached)
              results);
          (* Everything is cached now: a repeat batch is all hits. *)
          match Serve.Client.predict_batch client queries with
          | Error (_, e) -> Alcotest.failf "second batch failed: %s" e
          | Ok results ->
            Array.iteri
              (fun i p ->
                check Alcotest.bool
                  (Printf.sprintf "second batch, query %d cached" i)
                  true p.Serve.Protocol.cached)
              results))

let test_server_engines_agree () =
  let dataset = Lazy.force dataset42 in
  let artifact = artifact_of dataset in
  let queries = queries_of dataset 8 in
  let ask engine =
    with_server ~cache:0 ~engine artifact (fun _server address ->
        let client = Serve.Client.connect address in
        Fun.protect
          ~finally:(fun () -> Serve.Client.close client)
          (fun () ->
            (* Health reports which engine is serving. *)
            (match Serve.Client.health client with
            | Error (_, e) -> Alcotest.failf "health failed: %s" e
            | Ok h ->
              let index =
                Option.bind (J.member "model" h) (fun m ->
                    Option.bind (J.member "index" m) J.to_str)
              in
              check
                Alcotest.(option string)
                "health names the engine"
                (Some (Ml_model.Predict.engine_to_string engine))
                index);
            Array.map
              (fun (counters, uarch) ->
                match Serve.Client.predict client ~counters ~uarch with
                | Ok p -> p
                | Error (_, e) -> Alcotest.failf "predict failed: %s" e)
              queries))
  in
  let scan = ask Ml_model.Predict.Scan in
  let vptree = ask Ml_model.Predict.Vptree in
  Array.iteri
    (fun i p ->
      check_same_prediction ~msg:(Printf.sprintf "query %d" i) scan.(i) p)
    vptree

let test_server_rejects_non_finite_query () =
  let artifact = artifact_of (Lazy.force dataset42) in
  with_server artifact (fun _server address ->
      (* A predict request whose first counter is 1e999 — infinity once
         float_of_string gets at it.  Built by string surgery on a valid
         request because the JSON printer itself refuses to emit
         non-finite floats. *)
      let line =
        let counters =
          match Serve.Protocol.counters_to_json (some_counters ()) with
          | J.List (_ :: rest) -> J.List (J.Str "NONFINITE" :: rest)
          | _ -> Alcotest.fail "counters did not encode as a list"
        in
        let j =
          J.Obj
            [
              ("op", J.Str "predict");
              ("counters", counters);
              ("uarch", Serve.Protocol.uarch_to_json (some_uarch ()));
            ]
        in
        replace ~from:"\"NONFINITE\"" ~into:"1e999" (J.to_string j)
      in
      let fd =
        Unix.socket
          (Unix.domain_of_sockaddr (Serve.Protocol.sockaddr address))
          Unix.SOCK_STREAM 0
      in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Serve.Protocol.sockaddr address);
          Serve.Frame.write_line fd line;
          let reader = Serve.Frame.reader fd in
          match Serve.Frame.read reader with
          | Error e ->
            Alcotest.failf "no reply: %s" (Serve.Frame.error_to_string e)
          | Ok reply -> (
            match J.of_string reply with
            | Error e -> Alcotest.failf "unparseable reply: %s" e
            | Ok j -> (
              match Serve.Protocol.check_response j with
              | Ok _ -> Alcotest.fail "non-finite query accepted"
              | Error (code, msg) ->
                check Alcotest.int "typed 400, not a 500" 400 code;
                check_error_mentions ~msg:"names the cause" "non-finite" msg)));
      (* The connection error did not hurt the server. *)
      let client = Serve.Client.connect address in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close client)
        (fun () ->
          match Serve.Client.health client with
          | Ok _ -> ()
          | Error (_, e) -> Alcotest.failf "server unhealthy after 400: %s" e))

let test_server_tcp_ephemeral_port () =
  let artifact = artifact_of (Lazy.force dataset42) in
  let config =
    {
      (Serve.Server.default_config (Serve.Protocol.Tcp ("127.0.0.1", 0))) with
      Serve.Server.jobs = 1;
    }
  in
  let server = Serve.Server.start ~artifact config in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Serve.Server.wait server)
    (fun () ->
      let address = Serve.Server.address server in
      (match address with
      | Serve.Protocol.Tcp (_, port) ->
        check Alcotest.bool "kernel assigned a real port" true (port > 0)
      | _ -> Alcotest.fail "expected a TCP address");
      let client = Serve.Client.connect address in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close client)
        (fun () ->
          match Serve.Client.health client with
          | Ok _ -> ()
          | Error (_, e) -> Alcotest.failf "health over TCP failed: %s" e))

(* ---- framing robustness ------------------------------------------------ *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let frame_error = function
  | Ok (s : string) -> Printf.sprintf "ok %S" s
  | Error e -> Serve.Frame.error_to_string e

let test_frame_oversized () =
  with_socketpair (fun a b ->
      let reader = Serve.Frame.reader ~max_frame:16 a in
      (* More than max_frame bytes without a newline: the reader must
         report Oversized instead of buffering forever. *)
      let writer =
        Thread.create (fun () -> Serve.Frame.write_line b (String.make 64 'x')) ()
      in
      (match Serve.Frame.read reader with
      | Error (Serve.Frame.Oversized n) ->
        check Alcotest.int "reports its bound" 16 n
      | other -> Alcotest.failf "expected oversized, got %s" (frame_error other));
      Thread.join writer)

let test_frame_eof_mid_frame () =
  with_socketpair (fun a b ->
      let reader = Serve.Frame.reader a in
      (* A partial line then close: distinct from a clean close. *)
      let n = Unix.write_substring b "partial without newline" 0 23 in
      check Alcotest.int "wrote the fragment" 23 n;
      Unix.close b;
      match Serve.Frame.read reader with
      | Error Serve.Frame.Eof_mid_frame -> ()
      | other ->
        Alcotest.failf "expected eof-mid-frame, got %s" (frame_error other))

let test_frame_clean_close () =
  with_socketpair (fun a b ->
      let reader = Serve.Frame.reader a in
      Serve.Frame.write_line b "one complete line";
      Unix.close b;
      (match Serve.Frame.read reader with
      | Ok line -> check Alcotest.string "line" "one complete line" line
      | Error e -> Alcotest.failf "read failed: %s" (Serve.Frame.error_to_string e));
      match Serve.Frame.read reader with
      | Error Serve.Frame.Closed -> ()
      | other -> Alcotest.failf "expected closed, got %s" (frame_error other))

let test_frame_poll_times_out () =
  with_socketpair (fun a b ->
      let reader = Serve.Frame.reader a in
      (match Serve.Frame.poll reader ~timeout:0.05 with
      | Ok None -> ()
      | other -> Alcotest.failf "expected no line yet, got %s"
                   (match other with
                   | Ok (Some s) -> Printf.sprintf "ok %S" s
                   | Ok None -> "ok none"
                   | Error e -> Serve.Frame.error_to_string e));
      Serve.Frame.write_line b "late";
      match Serve.Frame.poll reader ~timeout:1.0 with
      | Ok (Some line) -> check Alcotest.string "line arrives" "late" line
      | Ok None -> Alcotest.fail "line not seen"
      | Error e -> Alcotest.failf "poll failed: %s" (Serve.Frame.error_to_string e))

let test_server_survives_garbage_and_oversized () =
  (* A client that violates the protocol gets a clean error (or a
     dropped connection for an oversized line) and the server keeps
     serving everyone else. *)
  let artifact = artifact_of (Lazy.force dataset42) in
  with_server artifact (fun _server address ->
      let raw line =
        let fd =
          Unix.socket
            (Unix.domain_of_sockaddr (Serve.Protocol.sockaddr address))
            Unix.SOCK_STREAM 0
        in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.connect fd (Serve.Protocol.sockaddr address);
            (try Serve.Frame.write_line fd line
             with Unix.Unix_error _ -> ());
            let reader = Serve.Frame.reader fd in
            Serve.Frame.read reader)
      in
      (match raw "this is not json" with
      | Ok reply ->
        (match J.of_string reply with
        | Ok j -> (
          match Option.bind (J.member "code" j) J.to_int with
          | Some code ->
            check Alcotest.bool "4xx error" true (code >= 400 && code < 500)
          | None -> Alcotest.fail "error reply lacks code")
        | Error e -> Alcotest.failf "unparseable error reply: %s" e)
      | Error e ->
        Alcotest.failf "no reply to garbage: %s"
          (Serve.Frame.error_to_string e));
      (* An oversized line: the server must not die.  It may answer or
         just drop the connection; either way the next client works. *)
      ignore (raw (String.make (Serve.Frame.default_max_frame + 64) 'j'));
      let client = Serve.Client.connect address in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close client)
        (fun () ->
          match Serve.Client.health client with
          | Ok _ -> ()
          | Error (_, e) ->
            Alcotest.failf "server died after protocol abuse: %s" e))

let test_server_wire_interop () =
  (* One listener, both framings: a JSON-wire client and a binary-wire
     client get bit-identical answers, and a raw newline-JSON peer gets
     newline-JSON back — never a binary header. *)
  let artifact = artifact_of (Lazy.force dataset42) in
  with_server artifact (fun _server address ->
      let counters = some_counters () and uarch = some_uarch () in
      let via wire =
        let c = Serve.Client.connect ~wire address in
        Fun.protect
          ~finally:(fun () -> Serve.Client.close c)
          (fun () ->
            match Serve.Client.predict c ~counters ~uarch with
            | Ok r -> r.Serve.Protocol.setting
            | Error (code, e) ->
              Alcotest.failf "predict over %s: %d %s"
                (Net.Codec.mode_to_string wire) code e)
      in
      check Alcotest.bool "wire format does not change the answer" true
        (via Net.Codec.Json = via Net.Codec.Binary);
      let fd =
        Unix.socket
          (Unix.domain_of_sockaddr (Serve.Protocol.sockaddr address))
          Unix.SOCK_STREAM 0
      in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Serve.Protocol.sockaddr address);
          (match
             Net.Codec.write fd Net.Codec.Json
               (J.to_string (J.Obj [ ("op", J.Str "health") ]))
           with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "raw write: %s" (Net.Codec.error_to_string e));
          match Net.Codec.read (Net.Codec.reader fd) with
          | Ok (Net.Codec.Json, reply) -> (
            match J.of_string reply with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "unparseable json reply: %s" e)
          | Ok (Net.Codec.Binary, _) ->
            Alcotest.fail "json-only client got a binary reply"
          | Error e ->
            Alcotest.failf "raw read: %s" (Net.Codec.error_to_string e)))

let test_server_hostile_binary_header () =
  (* A garbage binary length prefix against a live server: the
     connection is dropped with a best-effort 400 farewell and the
     server keeps serving everyone else. *)
  let artifact = artifact_of (Lazy.force dataset42) in
  with_server artifact (fun _server address ->
      let hostile bytes =
        let fd =
          Unix.socket
            (Unix.domain_of_sockaddr (Serve.Protocol.sockaddr address))
            Unix.SOCK_STREAM 0
        in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.connect fd (Serve.Protocol.sockaddr address);
            (try ignore (Unix.write_substring fd bytes 0 (String.length bytes))
             with Unix.Unix_error _ -> ());
            (* Half-close so a mid-frame stall is an EOF, not a client
               still promising bytes. *)
            (try Unix.shutdown fd Unix.SHUTDOWN_SEND
             with Unix.Unix_error _ -> ());
            (* Whatever happens — a 400 farewell or a straight drop — the
               connection must reach EOF rather than hang. *)
            let reader = Net.Codec.reader fd in
            let deadline = Unix.gettimeofday () +. 5.0 in
            let rec drain () =
              if Unix.gettimeofday () > deadline then
                Alcotest.fail "hostile connection not closed"
              else
                match Net.Codec.poll reader ~timeout:0.25 with
                | Ok None -> drain ()
                | Ok (Some _) -> drain ()
                | Error _ -> ()
            in
            drain ())
      in
      let prefix declared =
        let b = Bytes.create Net.Codec.header_len in
        Bytes.set b 0 Net.Codec.magic;
        Bytes.set_int32_be b 1 (Int32.of_int declared);
        Bytes.to_string b
      in
      hostile (prefix 0);
      hostile (prefix (-1));
      hostile (prefix (Net.Codec.default_max_frame + 1));
      (* Truncated header then EOF. *)
      hostile (String.make 1 Net.Codec.magic ^ "\x00");
      let client = Serve.Client.connect address in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close client)
        (fun () ->
          match Serve.Client.health client with
          | Ok _ -> ()
          | Error (_, e) ->
            Alcotest.failf "server died after hostile headers: %s" e))

let test_server_sheds_load () =
  let artifact = artifact_of (Lazy.force dataset42) in
  (* One worker, no queue: while a sleep occupies the slot, any predict
     must be shed with a 429. *)
  with_server ~jobs:1 ~queue:0 ~cache:0 ~admin:true artifact
    (fun _server address ->
      let sleeper =
        Thread.create
          (fun () ->
            let c = Serve.Client.connect address in
            Fun.protect
              ~finally:(fun () -> Serve.Client.close c)
              (fun () -> ignore (Serve.Client.sleep c 0.6)))
          ()
      in
      Thread.delay 0.2;
      let counters = some_counters () and uarch = some_uarch () in
      let client = Serve.Client.connect address in
      let shed_code =
        Fun.protect
          ~finally:(fun () -> Serve.Client.close client)
          (fun () ->
            match Serve.Client.predict client ~counters ~uarch with
            | Error (code, _) -> code
            | Ok _ -> 0)
      in
      Thread.join sleeper;
      check Alcotest.int "predict shed with 429" 429 shed_code;
      (* Health still answers (it bypasses admission) and counts it. *)
      let c = Serve.Client.connect address in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          match Serve.Client.health c with
          | Error (_, e) -> Alcotest.failf "health failed: %s" e
          | Ok h -> (
            match Option.bind (J.member "shed" h) J.to_int with
            | Some shed -> check Alcotest.bool "shed counted" true (shed >= 1)
            | None -> Alcotest.fail "health lacks shed")))

let test_client_retries_429_until_capacity () =
  let artifact = artifact_of (Lazy.force dataset42) in
  (* Saturate the single slot, then predict with a retry budget that
     outlives the sleeper: the client must absorb the 429s and land the
     request once capacity frees up. *)
  with_server ~jobs:1 ~queue:0 ~cache:0 ~admin:true artifact
    (fun _server address ->
      let sleeper =
        Thread.create
          (fun () ->
            let c = Serve.Client.connect address in
            Fun.protect
              ~finally:(fun () -> Serve.Client.close c)
              (fun () -> ignore (Serve.Client.sleep c 0.6)))
          ()
      in
      Thread.delay 0.2;
      let counters = some_counters () and uarch = some_uarch () in
      let client = Serve.Client.connect address in
      Fun.protect
        ~finally:(fun () ->
          Serve.Client.close client;
          Thread.join sleeper)
        (fun () ->
          (* Without a budget the saturated server sheds immediately. *)
          (match Serve.Client.predict client ~counters ~uarch with
          | Error (429, _) -> ()
          | Ok _ -> Alcotest.fail "expected an immediate 429"
          | Error (code, e) -> Alcotest.failf "expected 429, got %d: %s" code e);
          let backoff =
            {
              Prelude.Backoff.base_s = 0.05;
              factor = 2.0;
              max_s = 0.4;
              jitter = 0.1;
              max_retries = 8;
            }
          in
          match Serve.Client.predict ~backoff client ~counters ~uarch with
          | Ok _ -> ()
          | Error (code, e) ->
            Alcotest.failf "retries never landed: %d %s" code e))

let test_server_metrics_op () =
  let artifact = artifact_of (Lazy.force dataset42) in
  with_server artifact (fun _server address ->
      let client = Serve.Client.connect address in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close client)
        (fun () ->
          let counters, uarch = (some_counters (), some_uarch ()) in
          for _ = 1 to 3 do
            match Serve.Client.predict client ~counters ~uarch with
            | Ok _ -> ()
            | Error (_, e) -> Alcotest.failf "predict failed: %s" e
          done;
          match Serve.Client.metrics client with
          | Error (_, e) -> Alcotest.failf "metrics op failed: %s" e
          | Ok m ->
            (* The registry is process-wide, so absolute values include
               other tests — only floors are stable. *)
            let counter name =
              Option.value ~default:0
                (Option.bind (J.member "counters" m) (fun c ->
                     Option.bind (J.member name c) J.to_int))
            in
            check Alcotest.bool "requests counted" true
              (counter "serve.requests" >= 4);
            (* Repeats hit the cache, which does not predict. *)
            check Alcotest.bool "predictions counted" true
              (counter "serve.predictions" >= 1);
            let h =
              Option.bind (J.member "histograms" m)
                (J.member "serve.request.seconds")
            in
            (match h with
            | None -> Alcotest.fail "metrics lack serve.request.seconds"
            | Some h ->
              (* The metrics reply is built before its own request's
                 latency lands, so only the predicts are guaranteed. *)
              check Alcotest.bool "latency histogram populated" true
                (Option.value ~default:0
                   (Option.bind (J.member "count" h) J.to_int)
                >= 3);
              check
                Alcotest.(option string)
                "bucket scheme declared" (Some Obs.Metrics.scheme)
                (Option.bind (J.member "scheme" h) J.to_str);
              match Obs.Metrics.quantile_of_json h 0.99 with
              | Some p99 -> check Alcotest.bool "p99 positive" true (p99 > 0.0)
              | None -> Alcotest.fail "latency histogram lost its buckets");
            (* The same snapshot scrapes as Prometheus text. *)
            let body = Obs.Prom.render m in
            check_error_mentions ~msg:"prom histogram"
              "serve_request_seconds_bucket{le=\"+Inf\"}" body;
            check_error_mentions ~msg:"prom quantile"
              "serve_request_seconds_quantile{quantile=\"0.99\"}" body))

let test_top_render_synthetic () =
  let hist samples =
    let counts = Hashtbl.create 16 in
    List.iter
      (fun s ->
        let i = Obs.Metrics.bucket_index s in
        Hashtbl.replace counts i
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts i)))
      samples;
    let buckets =
      List.map
        (fun (i, c) -> J.List [ J.Int i; J.Int c ])
        (List.sort compare (Hashtbl.fold (fun i c acc -> (i, c) :: acc) counts []))
    in
    J.Obj
      [
        ("count", J.Int (List.length samples));
        ("sum", J.Float (List.fold_left ( +. ) 0.0 samples));
        ("min", J.Float (List.fold_left Float.min Float.infinity samples));
        ("max", J.Float (List.fold_left Float.max 0.0 samples));
        ("scheme", J.Str Obs.Metrics.scheme);
        ("buckets", J.List buckets);
      ]
  in
  let health ~requests ~shed ~hits ~misses =
    J.Obj
      [
        ("uptime_s", J.Float 12.5); ("requests", J.Int requests);
        ("shed", J.Int shed); ("errors", J.Int 0); ("inflight", J.Int 1);
        ("queue_depth", J.Int 2); ("jobs", J.Int 2); ("queue_limit", J.Int 64);
        ("cache",
         J.Obj
           [
             ("hits", J.Int hits); ("misses", J.Int misses);
             ("size", J.Int 4); ("capacity", J.Int 512);
           ]);
      ]
  in
  let metrics samples =
    J.Obj
      [
        ("counters", J.Obj [ ("serve.predictions", J.Int 40) ]);
        ("gauges", J.Obj []);
        ("histograms", J.Obj [ ("serve.request.seconds", hist samples) ]);
      ]
  in
  let s0 =
    {
      Serve.Top.at = 100.0;
      health = health ~requests:50 ~shed:0 ~hits:10 ~misses:30;
      metrics = metrics [ 0.001; 0.002 ];
    }
  in
  let s1 =
    {
      Serve.Top.at = 102.0;
      health = health ~requests:70 ~shed:2 ~hits:20 ~misses:40;
      metrics = metrics [ 0.001; 0.002; 0.05; 0.05; 0.05 ];
    }
  in
  let first = Serve.Top.render s0 ~address:"127.0.0.1:7979" in
  check_error_mentions ~msg:"address shown" "127.0.0.1:7979" first;
  check_error_mentions ~msg:"first sample has no window" "(first sample)"
    first;
  check_error_mentions ~msg:"lifetime quantiles" "(lifetime)" first;
  let second = Serve.Top.render ~prev:s0 s1 ~address:"127.0.0.1:7979" in
  (* 20 more requests over the 2 s window. *)
  check_error_mentions ~msg:"request rate" "10.0 req/s" second;
  check_error_mentions ~msg:"shed rate" "1.0 shed/s" second;
  check_error_mentions ~msg:"totals line" "requests 70" second;
  check_error_mentions ~msg:"cache hit rate" "33.3%" second;
  check_error_mentions ~msg:"queue depth" "depth 2" second;
  check_error_mentions ~msg:"window quantiles" "(window)" second;
  (* The window saw only the three 50 ms samples: its p50 must land in
     their bucket (~52 ms upper bound), far from the lifetime median. *)
  let window_line =
    List.find (fun l -> contains ~needle:"(window)" l)
      (String.split_on_char '\n' second)
  in
  (* Exact bucket arithmetic: the delta envelope clamps the bucket's
     upper bound back to the window's 50 ms max. *)
  check_error_mentions ~msg:"window median is the 50ms mode" "p50   50.000ms"
    window_line

let test_server_graceful_drain () =
  let artifact = artifact_of (Lazy.force dataset42) in
  let socket = tmp_path "drain.sock" in
  let config =
    {
      Serve.Server.address = Serve.Protocol.Unix_path socket;
      jobs = 1;
      queue = 4;
      cache_capacity = 0;
      admin = true;
      engine = Ml_model.Predict.Vptree;
      split = 0.0;
      source = None;
      watch = None;
    }
  in
  let server = Serve.Server.start ~artifact config in
  let address = Serve.Server.address server in
  let in_flight_ok = Atomic.make false in
  let sleeper =
    Thread.create
      (fun () ->
        let c = Serve.Client.connect address in
        Fun.protect
          ~finally:(fun () -> Serve.Client.close c)
          (fun () ->
            match Serve.Client.sleep c 0.5 with
            | Ok _ -> Atomic.set in_flight_ok true
            | Error _ -> ()))
      ()
  in
  Thread.delay 0.15;
  (* Stop while the sleep is in flight: it must still be answered. *)
  Serve.Server.stop server;
  Serve.Server.wait server;
  Thread.join sleeper;
  check Alcotest.bool "in-flight request answered during drain" true
    (Atomic.get in_flight_ok);
  (* The listener is gone: new connections must fail. *)
  (match Serve.Client.connect address with
  | exception Unix.Unix_error _ -> ()
  | c ->
    Serve.Client.close c;
    Alcotest.fail "connect succeeded after drain");
  if Sys.file_exists socket then Alcotest.fail "socket file not cleaned up"

(* ---- hot swap, A/B routing, reload ------------------------------------- *)

let bool_field name j =
  match J.member name j with
  | Some (J.Bool b) -> b
  | _ -> Alcotest.failf "response lacks boolean %s" name

let health_model_version h =
  match Option.bind (J.member "model" h) (fun m -> J.member "version" m) with
  | Some (J.Str v) -> v
  | _ -> Alcotest.fail "health lacks model.version"

let client_health_version address =
  let c = Serve.Client.connect address in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close c)
    (fun () ->
      match Serve.Client.health c with
      | Ok h -> health_model_version h
      | Error (_, e) -> Alcotest.failf "health failed: %s" e)

let test_server_swap_under_load () =
  let d42 = Lazy.force dataset42 and d43 = Lazy.force dataset43 in
  let a = artifact_of d42 and b = artifact_of d43 in
  let va = Serve.Artifact.version_id a and vb = Serve.Artifact.version_id b in
  let model_a = a.Serve.Artifact.model and model_b = b.Serve.Artifact.model in
  let queries = queries_of d42 6 in
  with_server ~jobs:4 a (fun server address ->
      let failures = Atomic.make 0 in
      let answered = Atomic.make 0 in
      let stop_swapping = Atomic.make false in
      (* Local ground truth per model: a response is valid iff its
         setting is bit-identical to the prediction of the model named
         by its own [model] tag — a torn read (old model, new tag, or a
         half-swapped batch) cannot satisfy this. *)
      let expected model (counters, uarch) =
        Ml_model.Model.predict model
          (Ml_model.Features.raw a.Serve.Artifact.space counters uarch)
      in
      let worker () =
        let client = Serve.Client.connect address in
        Fun.protect
          ~finally:(fun () -> Serve.Client.close client)
          (fun () ->
            for _ = 1 to 25 do
              match Serve.Client.predict_batch client queries with
              | Error _ -> Atomic.incr failures
              | Ok preds ->
                Atomic.incr answered;
                (* One routing snapshot per batch: every response in it
                   must name the same model. *)
                let tag =
                  match preds.(0).Serve.Protocol.model with
                  | Some v -> v
                  | None -> ""
                in
                Array.iteri
                  (fun i p ->
                    let ok =
                      p.Serve.Protocol.model = Some tag
                      &&
                      if tag = va then
                        p.Serve.Protocol.setting = expected model_a queries.(i)
                      else if tag = vb then
                        p.Serve.Protocol.setting = expected model_b queries.(i)
                      else false
                    in
                    if not ok then Atomic.incr failures)
                  preds
            done)
      in
      let swapper =
        Thread.create
          (fun () ->
            let flip = ref true in
            while not (Atomic.get stop_swapping) do
              let stable = if !flip then b else a in
              flip := not !flip;
              Serve.Server.install server ~stable ~candidate:None;
              Thread.delay 0.005
            done)
          ()
      in
      let threads = Array.init 4 (fun _ -> Thread.create worker ()) in
      Array.iter Thread.join threads;
      Atomic.set stop_swapping true;
      Thread.join swapper;
      check Alcotest.int "zero dropped, failed or torn responses" 0
        (Atomic.get failures);
      check Alcotest.int "every batch answered" 100 (Atomic.get answered))

let test_server_reload_op () =
  let a = artifact_of (Lazy.force dataset42) in
  let b = artifact_of (Lazy.force dataset43) in
  let vb = Serve.Artifact.version_id b in
  let next = ref Serve.Server.Unchanged in
  let source () = Ok !next in
  (* Admin-gated: a non-admin server refuses even with a source. *)
  with_server ~source a (fun _server address ->
      let c = Serve.Client.connect address in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          match Serve.Client.reload c with
          | Error (403, _) -> ()
          | Ok _ -> Alcotest.fail "reload accepted without --admin"
          | Error (code, e) ->
            Alcotest.failf "expected 403, got %d: %s" code e));
  (* No source: the fixed-artifact server cannot reload. *)
  with_server ~admin:true a (fun _server address ->
      let c = Serve.Client.connect address in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          match Serve.Client.reload c with
          | Error (400, e) ->
            check_error_mentions ~msg:"400 names the fix" "--registry" e
          | Ok _ -> Alcotest.fail "reload accepted without a source"
          | Error (code, e) ->
            Alcotest.failf "expected 400, got %d: %s" code e));
  (* The real path: Unchanged is a no-op, a Swap takes effect live. *)
  next := Serve.Server.Unchanged;
  with_server ~admin:true ~source a (fun _server address ->
      let c = Serve.Client.connect address in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          (match Serve.Client.reload c with
          | Ok r -> check Alcotest.bool "unchanged source" false
              (bool_field "changed" r)
          | Error (_, e) -> Alcotest.failf "reload failed: %s" e);
          next := Serve.Server.Swap { stable = b; candidate = None };
          (match Serve.Client.reload c with
          | Ok r ->
            check Alcotest.bool "swap reported" true (bool_field "changed" r);
            (match J.member "model" r with
            | Some (J.Str v) -> check Alcotest.string "new version" vb v
            | _ -> Alcotest.fail "reload reply lacks model")
          | Error (_, e) -> Alcotest.failf "reload failed: %s" e);
          (* Same artifact again: effective no-op, reported as such. *)
          (match Serve.Client.reload c with
          | Ok r -> check Alcotest.bool "idempotent swap" false
              (bool_field "changed" r)
          | Error (_, e) -> Alcotest.failf "reload failed: %s" e);
          check Alcotest.string "health serves the new version" vb
            (client_health_version address);
          (* Fresh predictions are pinned to the new model. *)
          let counters, uarch = (some_counters (), some_uarch ()) in
          match Serve.Client.predict c ~counters ~uarch with
          | Ok p ->
            check Alcotest.(option string) "prediction tagged" (Some vb)
              p.Serve.Protocol.model
          | Error (_, e) -> Alcotest.failf "predict failed: %s" e))

let test_server_ab_deterministic () =
  let d42 = Lazy.force dataset42 in
  let a = artifact_of d42 and b = artifact_of (Lazy.force dataset43) in
  let va = Serve.Artifact.version_id a and vb = Serve.Artifact.version_id b in
  let queries = queries_of d42 8 in
  let arms_of address =
    let c = Serve.Client.connect address in
    Fun.protect
      ~finally:(fun () -> Serve.Client.close c)
      (fun () ->
        Array.map
          (fun (counters, uarch) ->
            match Serve.Client.predict c ~counters ~uarch with
            | Error (_, e) -> Alcotest.failf "predict failed: %s" e
            | Ok p ->
              let arm = Option.get p.Serve.Protocol.arm in
              let model = Option.get p.Serve.Protocol.model in
              check Alcotest.string "model tag matches the arm"
                (if arm = "candidate" then vb else va)
                model;
              arm)
          queries)
  in
  let first =
    with_server ~candidate:b ~split:0.5 a (fun _server address ->
        let one = arms_of address in
        let two = arms_of address in
        check Alcotest.(array string) "assignment is stable across repeats"
          one two;
        one)
  in
  (* A fresh server with the same split routes every key identically:
     assignment hashes the query, not server state. *)
  let second =
    with_server ~candidate:b ~split:0.5 a (fun _server address ->
        arms_of address)
  in
  check Alcotest.(array string) "assignment survives a restart" first second;
  check Alcotest.bool "a 50% split uses both arms" true
    (Array.exists (fun a -> a = "stable") first
    && Array.exists (fun a -> a = "candidate") first);
  (* Degenerate splits pin every query to one arm. *)
  let all label arms = Array.for_all (fun a -> a = label) arms in
  with_server ~candidate:b ~split:0.0 a (fun _server address ->
      check Alcotest.bool "split 0 -> all stable" true
        (all "stable" (arms_of address)));
  with_server ~candidate:b ~split:1.0 a (fun _server address ->
      check Alcotest.bool "split 1 -> all candidate" true
        (all "candidate" (arms_of address)));
  (* The bucket function itself is total and bounded. *)
  List.iter
    (fun key ->
      let bucket = Serve.Server.ab_bucket key in
      check Alcotest.bool "bucket in [0, 10000)" true
        (bucket >= 0 && bucket < 10_000);
      check Alcotest.int "bucket is deterministic" bucket
        (Serve.Server.ab_bucket key))
    [ ""; "x"; "1.5,2.5@cache"; String.make 300 'q' ]

let test_server_health_reports_version () =
  let d42 = Lazy.force dataset42 in
  let artifact =
    {
      (artifact_of d42) with
      Serve.Artifact.meta =
        [
          ("seed", J.Int 42);
          ("programs_digest", J.Str "fnv1a64:deadbeef");
          ("store", J.Str "results/store");
        ];
    }
  in
  let version = Serve.Artifact.version_id artifact in
  with_server artifact (fun _server address ->
      let c = Serve.Client.connect address in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          match Serve.Client.health c with
          | Error (_, e) -> Alcotest.failf "health failed: %s" e
          | Ok h ->
            let model = Option.get (J.member "model" h) in
            check Alcotest.string "content-addressed version" version
              (health_model_version h);
            (match Option.bind (J.member "checksum" model) J.to_str with
            | Some c ->
              check Alcotest.string "checksum algorithm named"
                ("fnv1a64:" ^ version) c
            | None -> Alcotest.fail "health lacks model.checksum");
            (* Provenance surfaces the artifact's data lineage — and
               only that: parameters like the seed stay in meta. *)
            let prov = Option.get (J.member "provenance" model) in
            check
              Alcotest.(option string)
              "programs digest surfaced" (Some "fnv1a64:deadbeef")
              (Option.bind (J.member "programs_digest" prov) J.to_str);
            check
              Alcotest.(option string)
              "store surfaced" (Some "results/store")
              (Option.bind (J.member "store" prov) J.to_str);
            check Alcotest.bool "seed is not provenance" true
              (J.member "seed" prov = None);
            (match Option.bind (J.member "reloads" h) J.to_int with
            | Some n -> check Alcotest.int "no reloads yet" 0 n
            | None -> Alcotest.fail "health lacks reloads");
            check Alcotest.bool "no A/B block without a candidate" true
              (match J.member "ab" h with
              | None | Some J.Null -> true
              | Some _ -> false)))

let test_client_reconnects_idempotent_ops () =
  let artifact = artifact_of (Lazy.force dataset42) in
  let socket = tmp_path "reconnect.sock" in
  let config =
    {
      Serve.Server.address = Serve.Protocol.Unix_path socket;
      jobs = 1;
      queue = 4;
      cache_capacity = 16;
      admin = false;
      engine = Ml_model.Predict.Vptree;
      split = 0.0;
      source = None;
      watch = None;
    }
  in
  let server1 = Serve.Server.start ~artifact config in
  let client = Serve.Client.connect (Serve.Server.address server1) in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close client)
    (fun () ->
      (match Serve.Client.health client with
      | Ok _ -> ()
      | Error (_, e) -> Alcotest.failf "first health failed: %s" e);
      (* Kill the server the client is attached to, then bring a new
         one up on the same address: the client's next idempotent op
         hits a dead socket and must transparently reconnect. *)
      Serve.Server.stop server1;
      Serve.Server.wait server1;
      let server2 = Serve.Server.start ~artifact config in
      Fun.protect
        ~finally:(fun () ->
          Serve.Server.stop server2;
          Serve.Server.wait server2;
          if Sys.file_exists socket then Sys.remove socket)
        (fun () ->
          (match Serve.Client.health client with
          | Ok _ -> ()
          | Error (_, e) ->
            Alcotest.failf "health did not survive the restart: %s" e);
          let counters, uarch = (some_counters (), some_uarch ()) in
          match Serve.Client.predict client ~counters ~uarch with
          | Ok _ -> ()
          | Error (_, e) ->
            Alcotest.failf "predict did not survive the restart: %s" e))

let test_server_watch_swaps_in_background () =
  let a = artifact_of (Lazy.force dataset42) in
  let b = artifact_of (Lazy.force dataset43) in
  let vb = Serve.Artifact.version_id b in
  let next = ref Serve.Server.Unchanged in
  let source () = Ok !next in
  with_server ~source ~watch:0.05 a (fun _server address ->
      check Alcotest.string "starts on the fixed artifact"
        (Serve.Artifact.version_id a)
        (client_health_version address);
      next := Serve.Server.Swap { stable = b; candidate = None };
      (* The watch thread must pick the swap up on its own. *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec await () =
        if client_health_version address = vb then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "watch thread never installed the new version"
        else begin
          Thread.delay 0.05;
          await ()
        end
      in
      await ())

let () =
  Alcotest.run "serve"
    [
      ( "lru",
        [
          Alcotest.test_case "capacity and eviction" `Quick
            test_lru_capacity_and_eviction;
          Alcotest.test_case "get promotes" `Quick test_lru_get_promotes;
          Alcotest.test_case "overwrite" `Quick test_lru_overwrite;
          Alcotest.test_case "hit/miss counters" `Quick test_lru_counters;
          Alcotest.test_case "bad capacity" `Quick test_lru_bad_capacity;
        ] );
      ( "pool-async",
        [
          Alcotest.test_case "submit runs tasks" `Quick
            test_pool_submit_runs_tasks;
          Alcotest.test_case "inline when sequential" `Quick
            test_pool_submit_inline_when_sequential;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "round-trip is bit-identical (seeds 42/43)"
            `Slow test_artifact_roundtrip_bit_identical;
          Alcotest.test_case "load is >=100x faster than retraining" `Slow
            test_artifact_load_is_fast;
          Alcotest.test_case "rejects corruption" `Slow
            test_artifact_rejects_corruption;
          Alcotest.test_case "saves a frozen index (version 2)" `Slow
            test_artifact_saves_frozen_index;
          Alcotest.test_case "loads version 1, rebuilds the index" `Slow
            test_artifact_v1_loads_and_rebuilds_index;
          Alcotest.test_case "rejects a corrupt index" `Slow
            test_artifact_rejects_corrupt_index;
        ] );
      ( "quantise",
        [
          Alcotest.test_case "signed zero, grid, non-finite keys" `Quick
            test_quantise_signed_zero_and_nan;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Slow
            test_protocol_request_roundtrip;
          Alcotest.test_case "rejects bad requests" `Quick
            test_protocol_rejects_bad_requests;
          Alcotest.test_case "error responses" `Quick
            test_protocol_error_responses;
          Alcotest.test_case "rejects non-finite counters" `Slow
            test_protocol_rejects_non_finite_counters;
          Alcotest.test_case "batch round-trip and limits" `Slow
            test_protocol_batch_roundtrip_and_limits;
        ] );
      ( "frame",
        [
          Alcotest.test_case "oversized frame" `Quick test_frame_oversized;
          Alcotest.test_case "eof mid-frame" `Quick test_frame_eof_mid_frame;
          Alcotest.test_case "clean close" `Quick test_frame_clean_close;
          Alcotest.test_case "poll times out" `Quick
            test_frame_poll_times_out;
        ] );
      ( "server",
        [
          Alcotest.test_case "concurrent queries, bit-identical" `Slow
            test_server_concurrent_bit_identical;
          Alcotest.test_case "batch matches singles (jobs 1)" `Slow
            (test_server_batch_matches_singles ~jobs:1);
          Alcotest.test_case "batch matches singles (jobs 4)" `Slow
            (test_server_batch_matches_singles ~jobs:4);
          Alcotest.test_case "batch cache hits" `Slow
            test_server_batch_cache_hits;
          Alcotest.test_case "scan and vptree engines agree" `Slow
            test_server_engines_agree;
          Alcotest.test_case "rejects non-finite query with a 400" `Slow
            test_server_rejects_non_finite_query;
          Alcotest.test_case "tcp ephemeral port" `Slow
            test_server_tcp_ephemeral_port;
          Alcotest.test_case "survives garbage and oversized frames" `Slow
            test_server_survives_garbage_and_oversized;
          Alcotest.test_case "json and binary wire interop" `Slow
            test_server_wire_interop;
          Alcotest.test_case "survives hostile binary headers" `Slow
            test_server_hostile_binary_header;
          Alcotest.test_case "sheds load when saturated" `Slow
            test_server_sheds_load;
          Alcotest.test_case "client retries 429 until capacity" `Slow
            test_client_retries_429_until_capacity;
          Alcotest.test_case "metrics op and prometheus scrape" `Slow
            test_server_metrics_op;
          Alcotest.test_case "top renders rates and window quantiles" `Quick
            test_top_render_synthetic;
          Alcotest.test_case "graceful drain" `Slow
            test_server_graceful_drain;
        ] );
      ( "swap",
        [
          Alcotest.test_case "hot swap under concurrent load, no torn reads"
            `Slow test_server_swap_under_load;
          Alcotest.test_case "reload op: 403, 400, live swap" `Slow
            test_server_reload_op;
          Alcotest.test_case "A/B assignment is deterministic" `Slow
            test_server_ab_deterministic;
          Alcotest.test_case "health reports version and provenance" `Slow
            test_server_health_reports_version;
          Alcotest.test_case "client reconnects for idempotent ops" `Slow
            test_client_reconnects_idempotent_ops;
          Alcotest.test_case "watch thread swaps in the background" `Slow
            test_server_watch_swaps_in_background;
        ] );
    ]
