(* Tests for the iterative-compilation baselines. *)

module F = Passes.Flags

let check = Alcotest.check

(* A cheap synthetic objective: counts how many dimensions match a hidden
   target; deterministic, minimised at the target. *)
let hidden_target =
  let rng = Prelude.Rng.create 99 in
  F.random rng

let objective s =
  let mismatches = ref 0 in
  Array.iteri (fun i v -> if v <> hidden_target.(i) then incr mismatches) s;
  float_of_int !mismatches

let test_random_search_curve_monotone () =
  let rng = Prelude.Rng.create 1 in
  let r = Search.Iterative.search ~rng ~budget:200 ~evaluate:objective in
  let prev = ref infinity in
  Array.iter
    (fun v ->
      if v > !prev then Alcotest.fail "best-so-far increased";
      prev := v)
    r.Search.Iterative.curve;
  check (Alcotest.float 1e-9) "last is best" r.Search.Iterative.best_seconds
    r.Search.Iterative.curve.(199)

let test_random_search_deterministic () =
  let run seed =
    let rng = Prelude.Rng.create seed in
    (Search.Iterative.search ~rng ~budget:50 ~evaluate:objective)
      .Search.Iterative.best_seconds
  in
  check (Alcotest.float 1e-9) "same seed same result" (run 5) (run 5)

let test_convergence_expected_curve () =
  let rng = Prelude.Rng.create 2 in
  let times = [| 4.0; 3.0; 2.0; 1.0 |] in
  let curve = Search.Iterative.convergence ~rng ~trials:2000 times in
  check Alcotest.int "length" 4 (Array.length curve);
  (* After all draws the best is certain. *)
  check (Alcotest.float 1e-9) "converged" 1.0 curve.(3);
  (* Expected first draw is the mean. *)
  check (Alcotest.float 0.05) "first draw mean" 2.5 curve.(0);
  let prev = ref infinity in
  Array.iter
    (fun v ->
      if v > !prev +. 1e-9 then Alcotest.fail "not monotone";
      prev := v)
    curve

let test_evaluations_to_reach () =
  let curve = [| 5.0; 4.0; 2.0; 2.0; 1.0 |] in
  check Alcotest.(option int) "reach 2.5" (Some 3)
    (Search.Iterative.evaluations_to_reach curve 2.5);
  check Alcotest.(option int) "reach 0.5" None
    (Search.Iterative.evaluations_to_reach curve 0.5)

let test_hill_climb_improves () =
  let rng = Prelude.Rng.create 3 in
  let r = Search.Hill_climb.search ~rng ~budget:300 ~evaluate:objective in
  (* Random start averages ~mismatch on most dimensions; climbing must get
     much closer to the target. *)
  check Alcotest.bool "close to target" true (r.Search.Hill_climb.best_seconds < 10.0);
  check Alcotest.bool "budget respected" true
    (r.Search.Hill_climb.evaluations <= 300)

let test_hill_climb_beats_random () =
  let budget = 300 in
  let rngr = Prelude.Rng.create 4 and rngh = Prelude.Rng.create 4 in
  let r = Search.Iterative.search ~rng:rngr ~budget ~evaluate:objective in
  let h = Search.Hill_climb.search ~rng:rngh ~budget ~evaluate:objective in
  check Alcotest.bool "hill climbing at least as good" true
    (h.Search.Hill_climb.best_seconds <= r.Search.Iterative.best_seconds)

let test_genetic_improves () =
  let rng = Prelude.Rng.create 5 in
  let g = Search.Genetic.search ~rng ~budget:400 ~evaluate:objective () in
  check Alcotest.bool "below random start" true
    (g.Search.Genetic.best_seconds < 15.0);
  check Alcotest.bool "budget respected" true
    (g.Search.Genetic.evaluations <= 400)

let test_genetic_valid_settings () =
  let rng = Prelude.Rng.create 6 in
  let g = Search.Genetic.search ~rng ~budget:100 ~evaluate:objective () in
  F.validate g.Search.Genetic.best

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "search"
    [
      ( "iterative",
        [
          quick "curve monotone" test_random_search_curve_monotone;
          quick "deterministic" test_random_search_deterministic;
          quick "convergence curve" test_convergence_expected_curve;
          quick "evaluations to reach" test_evaluations_to_reach;
        ] );
      ( "hill climb",
        [
          quick "improves" test_hill_climb_improves;
          quick "beats random" test_hill_climb_beats_random;
        ] );
      ( "genetic",
        [
          quick "improves" test_genetic_improves;
          quick "valid settings" test_genetic_valid_settings;
        ] );
    ]
