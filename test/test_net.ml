(** Tests for the shared non-blocking I/O core: Bytebuf FIFO mechanics,
    dual-format codec framing (round-trips, incremental decoding, hostile
    length prefixes), the readiness loop (posted closures, timers, nudge)
    and per-connection state machines (mode latching, typed faults,
    slowloris fairness, output bounds). *)

let check = Alcotest.check

module Bytebuf = Prelude.Bytebuf
module Codec = Net.Codec
module Loop = Net.Loop
module Conn = Net.Conn

(* ---- Bytebuf ----------------------------------------------------------- *)

let test_bytebuf_fifo () =
  let b = Bytebuf.create () in
  check Alcotest.bool "fresh is empty" true (Bytebuf.is_empty b);
  Bytebuf.add_string b "hello";
  Bytebuf.add_char b ' ';
  Bytebuf.add_string b "world";
  check Alcotest.int "length" 11 (Bytebuf.length b);
  check Alcotest.string "sub_string head" "hello" (Bytebuf.sub_string b 0 5);
  check Alcotest.(option int) "index_from 0" (Some 6) (Bytebuf.index_from b 0 'w');
  check Alcotest.(option int) "index_from past" None (Bytebuf.index_from b 7 'w');
  Bytebuf.consume b 6;
  check Alcotest.int "length after consume" 5 (Bytebuf.length b);
  check Alcotest.string "head moved" "world" (Bytebuf.sub_string b 0 5);
  check Alcotest.bool "get tracks head" true (Bytebuf.get b 0 = 'w');
  (match Bytebuf.consume b 6 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "over-consume must raise");
  Bytebuf.consume b 5;
  check Alcotest.bool "drained" true (Bytebuf.is_empty b);
  Bytebuf.add_string b "again";
  Bytebuf.clear b;
  check Alcotest.bool "clear empties" true (Bytebuf.is_empty b)

let test_bytebuf_reserve_commit () =
  (* Start tiny so reserve must grow and compact around a consumed head. *)
  let b = Bytebuf.create ~capacity:8 () in
  Bytebuf.add_string b "abcdefgh";
  Bytebuf.consume b 4;
  let payload = String.init 100 (fun i -> Char.chr (Char.code 'a' + (i mod 26))) in
  let store, pos = Bytebuf.reserve b 100 in
  Bytes.blit_string payload 0 store pos 100;
  Bytebuf.commit b 100;
  check Alcotest.int "length" 104 (Bytebuf.length b);
  check Alcotest.string "survivors first" "efgh" (Bytebuf.sub_string b 0 4);
  check Alcotest.string "reserved bytes follow" payload
    (Bytebuf.sub_string b 4 100);
  let buf, off, len = Bytebuf.peek b in
  check Alcotest.int "peek sees everything" 104 len;
  check Alcotest.string "peek content" ("efgh" ^ payload)
    (Bytes.sub_string buf off len)

(* ---- Codec: pure decoding ---------------------------------------------- *)

let frame_pp = function
  | Ok None -> "ok none"
  | Ok (Some (m, p)) -> Printf.sprintf "ok %s %S" (Codec.mode_to_string m) p
  | Error e -> Codec.error_to_string e

let expect_frame d mode payload =
  match Codec.next d with
  | Ok (Some (m, p)) when m = mode && p = payload -> ()
  | other ->
    Alcotest.failf "expected %s %S, got %s" (Codec.mode_to_string mode)
      payload (frame_pp other)

let test_codec_roundtrip () =
  List.iter
    (fun payload ->
      List.iter
        (fun mode ->
          let d = Codec.decoder () in
          Bytebuf.add_string (Codec.buffer d) (Codec.encode mode payload);
          expect_frame d mode payload;
          match Codec.next d with
          | Ok None -> ()
          | other -> Alcotest.failf "trailing bytes: %s" (frame_pp other))
        [ Codec.Json; Codec.Binary ])
    [
      "{}";
      "{\"op\":\"predict\",\"x\":[1,2,3]}";
      String.make 100_000 'q';
      (* A payload whose body contains the binary magic byte: framing must
         not resynchronise on it. *)
      Printf.sprintf "{\"blob\":\"%c%c%c\"}" Codec.magic Codec.magic '\x00';
    ]

let test_codec_interleaved_incremental () =
  (* Alternating formats on one stream, delivered a byte at a time: each
     frame must emerge exactly once, in order, only when complete. *)
  let frames =
    [
      (Codec.Binary, "{\"n\":1}");
      (Codec.Json, "{\"n\":2}");
      (Codec.Binary, String.make 3000 'b');
      (Codec.Json, "{\"n\":4}");
    ]
  in
  let stream =
    String.concat "" (List.map (fun (m, p) -> Codec.encode m p) frames)
  in
  let d = Codec.decoder () in
  let got = ref [] in
  String.iter
    (fun c ->
      Bytebuf.add_char (Codec.buffer d) c;
      let rec drain () =
        match Codec.next d with
        | Ok (Some f) ->
          got := f :: !got;
          drain ()
        | Ok None -> ()
        | Error e -> Alcotest.failf "decode error: %s" (Codec.error_to_string e)
      in
      drain ())
    stream;
  let got = List.rev !got in
  check Alcotest.int "frame count" (List.length frames) (List.length got);
  List.iter2
    (fun (em, ep) (gm, gp) ->
      check Alcotest.string "mode" (Codec.mode_to_string em)
        (Codec.mode_to_string gm);
      check Alcotest.string "payload" ep gp)
    frames got

let header n =
  let b = Bytes.create Codec.header_len in
  Bytes.set b 0 Codec.magic;
  Bytes.set_int32_be b 1 (Int32.of_int n);
  Bytes.to_string b

let test_codec_bad_length_prefixes () =
  (* Zero, oversized and garbage (wraps to huge) length prefixes must be
     rejected before any payload is buffered, and the error is sticky. *)
  List.iter
    (fun (declared, expect_declared) ->
      let d = Codec.decoder () in
      Bytebuf.add_string (Codec.buffer d) (header declared);
      (match Codec.next d with
      | Error (Codec.Bad_length (n, limit)) ->
        check Alcotest.int "declared" expect_declared n;
        check Alcotest.int "limit" Codec.default_max_frame limit
      | other -> Alcotest.failf "expected bad-length, got %s" (frame_pp other));
      (* Sticky: the stream has lost framing for good. *)
      Bytebuf.add_string (Codec.buffer d) (Codec.encode Codec.Binary "{}");
      match Codec.next d with
      | Error (Codec.Bad_length _) -> ()
      | other -> Alcotest.failf "error must stick, got %s" (frame_pp other))
    [
      (0, 0);
      (Codec.default_max_frame + 1, Codec.default_max_frame + 1);
      (-1, 0xFFFFFFFF) (* 0xFFFFFFFF on the wire reads back unsigned *);
    ]

let test_codec_oversized_json () =
  let d = Codec.decoder ~max_frame:64 () in
  Bytebuf.add_string (Codec.buffer d) (String.make 100 'x');
  (match Codec.next d with
  | Error (Codec.Oversized n) -> check Alcotest.int "bound" 64 n
  | other -> Alcotest.failf "expected oversized, got %s" (frame_pp other));
  (* A newline-terminated line over the bound trips it too. *)
  let d = Codec.decoder ~max_frame:64 () in
  Bytebuf.add_string (Codec.buffer d) (String.make 80 'y' ^ "\n");
  match Codec.next d with
  | Error (Codec.Oversized _) -> ()
  | other -> Alcotest.failf "expected oversized, got %s" (frame_pp other)

(* ---- Codec: blocking transport ----------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_codec_blocking_roundtrip () =
  with_socketpair (fun a b ->
      (match Codec.write b Codec.Binary "{\"first\":true}" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %s" (Codec.error_to_string e));
      (match Codec.write b Codec.Json "{\"second\":true}" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %s" (Codec.error_to_string e));
      let r = Codec.reader a in
      (match Codec.read r with
      | Ok (Codec.Binary, p) -> check Alcotest.string "binary" "{\"first\":true}" p
      | other ->
        Alcotest.failf "expected binary frame, got %s"
          (match other with
          | Ok (m, p) -> Printf.sprintf "%s %S" (Codec.mode_to_string m) p
          | Error e -> Codec.error_to_string e));
      (match Codec.read r with
      | Ok (Codec.Json, p) -> check Alcotest.string "json" "{\"second\":true}" p
      | _ -> Alcotest.fail "expected json frame");
      Unix.close b;
      match Codec.read r with
      | Error Codec.Closed -> ()
      | other -> Alcotest.failf "expected clean close, got %s"
                   (match other with
                   | Ok (_, p) -> Printf.sprintf "ok %S" p
                   | Error e -> Codec.error_to_string e))

let test_codec_blocking_eof_mid_frame () =
  with_socketpair (fun a b ->
      (* Header promising 10 bytes, then 3, then EOF. *)
      ignore (Unix.write_substring b (header 10) 0 Codec.header_len);
      ignore (Unix.write_substring b "abc" 0 3);
      Unix.close b;
      let r = Codec.reader a in
      match Codec.read r with
      | Error Codec.Eof_mid_frame -> ()
      | Error e -> Alcotest.failf "expected eof-mid-frame, got %s"
                     (Codec.error_to_string e)
      | Ok _ -> Alcotest.fail "expected eof-mid-frame, got a frame")

let test_codec_poll_timeout () =
  with_socketpair (fun a b ->
      let r = Codec.reader a in
      (match Codec.poll r ~timeout:0.05 with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "nothing was sent"
      | Error e -> Alcotest.failf "poll: %s" (Codec.error_to_string e));
      (match Codec.write b Codec.Binary "{\"late\":1}" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %s" (Codec.error_to_string e));
      match Codec.poll r ~timeout:1.0 with
      | Ok (Some (Codec.Binary, p)) ->
        check Alcotest.string "late frame" "{\"late\":1}" p
      | Ok (Some _) | Ok None -> Alcotest.fail "frame not seen"
      | Error e -> Alcotest.failf "poll: %s" (Codec.error_to_string e))

(* ---- Loop --------------------------------------------------------------- *)

(* A loop running on its own thread, as servers use it. *)
let with_loop f =
  let loop = Loop.create () in
  let thread = Thread.create Loop.run loop in
  Fun.protect
    ~finally:(fun () ->
      Loop.stop loop;
      Thread.join thread)
    (fun () -> f loop)

(* Run [f] on the loop thread and wait for its result; exceptions
   propagate to the caller. *)
let on_loop loop f =
  let result = ref None in
  let m = Mutex.create () and c = Condition.create () in
  Loop.post loop (fun () ->
      let r = try Ok (f ()) with e -> Error e in
      Mutex.lock m;
      result := Some r;
      Condition.signal c;
      Mutex.unlock m);
  Mutex.lock m;
  while Option.is_none !result do
    Condition.wait c m
  done;
  Mutex.unlock m;
  match Option.get !result with Ok v -> v | Error e -> raise e

let wait_for ?(timeout = 5.0) what pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

let test_loop_post_and_timers () =
  with_loop (fun loop ->
      let order = ref [] in
      let push tag = order := tag :: !order in
      (* Posted closures run on the loop thread, promptly. *)
      on_loop loop (fun () -> push "posted");
      (* Timers fire in deadline order; a cancelled timer never fires. *)
      on_loop loop (fun () ->
          let doomed = Loop.after loop 0.01 (fun () -> push "doomed") in
          ignore (Loop.after loop 0.05 (fun () -> push "late"));
          ignore (Loop.after loop 0.01 (fun () -> push "early"));
          Loop.cancel doomed;
          Loop.cancel doomed (* idempotent *));
      wait_for "timers" (fun () -> on_loop loop (fun () -> List.length !order) = 3);
      check
        Alcotest.(list string)
        "order" [ "posted"; "early"; "late" ]
        (List.rev (on_loop loop (fun () -> !order))))

let test_loop_nudge_runs_on_wake () =
  let loop = Loop.create () in
  let wakes = Atomic.make 0 in
  Loop.set_on_wake loop (fun () -> Atomic.incr wakes);
  let thread = Thread.create Loop.run loop in
  Fun.protect
    ~finally:(fun () ->
      Loop.stop loop;
      Thread.join thread)
    (fun () ->
      let before = Atomic.get wakes in
      Loop.nudge loop;
      wait_for "on_wake" (fun () -> Atomic.get wakes > before))

(* ---- Conn --------------------------------------------------------------- *)

(* An echo connection: every decoded payload is sent straight back in the
   connection's latched mode.  Returns the recorded close reason. *)
let attach_echo ?out_limit loop fd =
  let reason = ref None in
  let conn =
    on_loop loop (fun () ->
        Conn.attach loop fd ?out_limit
          ~on_frame:(fun c payload -> Conn.send c payload)
          ~on_closed:(fun _ r -> reason := Some r)
          ())
  in
  (conn, reason)

let test_conn_echo_latches_mode () =
  with_loop (fun loop ->
      (* One binary client, one JSON client, one server loop: each gets
         replies framed the way it spoke first. *)
      with_socketpair (fun srv_a cli_a ->
          with_socketpair (fun srv_b cli_b ->
              let _, _ = attach_echo loop srv_a in
              let _, _ = attach_echo loop srv_b in
              (match Codec.write cli_a Codec.Binary "{\"who\":\"a\"}" with
              | Ok () -> ()
              | Error e -> Alcotest.failf "write: %s" (Codec.error_to_string e));
              (match Codec.write cli_b Codec.Json "{\"who\":\"b\"}" with
              | Ok () -> ()
              | Error e -> Alcotest.failf "write: %s" (Codec.error_to_string e));
              (match Codec.read (Codec.reader cli_a) with
              | Ok (Codec.Binary, p) ->
                check Alcotest.string "binary echo" "{\"who\":\"a\"}" p
              | Ok (Codec.Json, _) -> Alcotest.fail "binary client got json"
              | Error e -> Alcotest.failf "read: %s" (Codec.error_to_string e));
              match Codec.read (Codec.reader cli_b) with
              | Ok (Codec.Json, p) ->
                check Alcotest.string "json echo" "{\"who\":\"b\"}" p
              | Ok (Codec.Binary, _) -> Alcotest.fail "json client got binary"
              | Error e -> Alcotest.failf "read: %s" (Codec.error_to_string e))))

let test_conn_hostile_header_faults () =
  with_loop (fun loop ->
      with_socketpair (fun srv cli ->
          let _, reason = attach_echo loop srv in
          (* Garbage length prefix: the server must drop the connection
             with a typed fault, not hang or buffer. *)
          ignore (Unix.write_substring cli (header (-1)) 0 Codec.header_len);
          wait_for "fault close" (fun () -> !reason <> None);
          match !reason with
          | Some (Conn.Fault (Codec.Bad_length (n, _))) ->
            check Alcotest.int "declared length" 0xFFFFFFFF n
          | Some r ->
            Alcotest.failf "expected bad-length fault, got %s"
              (Conn.close_reason_to_string r)
          | None -> assert false))

let test_conn_slowloris_does_not_starve () =
  with_loop (fun loop ->
      with_socketpair (fun srv_slow cli_slow ->
          with_socketpair (fun srv_fast cli_fast ->
              let _, _ = attach_echo loop srv_slow in
              let _, _ = attach_echo loop srv_fast in
              (* The slow client commits to a 12-byte frame and stalls
                 after 2 bytes. *)
              ignore
                (Unix.write_substring cli_slow (header 12) 0 Codec.header_len);
              ignore (Unix.write_substring cli_slow "{\"" 0 2);
              (* The fast client must still complete many round-trips. *)
              let r = Codec.reader cli_fast in
              for i = 0 to 49 do
                let payload = Printf.sprintf "{\"i\":%d}" i in
                (match Codec.write cli_fast Codec.Binary payload with
                | Ok () -> ()
                | Error e ->
                  Alcotest.failf "write %d: %s" i (Codec.error_to_string e));
                match Codec.read r with
                | Ok (_, p) -> check Alcotest.string "echo" payload p
                | Error e ->
                  Alcotest.failf "read %d: %s" i (Codec.error_to_string e)
              done;
              (* The stalled frame still completes once the bytes arrive. *)
              ignore (Unix.write_substring cli_slow "ok\":true}" 0 9);
              ignore (Unix.write_substring cli_slow "x" 0 1);
              match Codec.read (Codec.reader cli_slow) with
              | Ok (Codec.Binary, p) ->
                check Alcotest.string "slow echo" "{\"ok\":true}x" p
              | Ok (Codec.Json, _) -> Alcotest.fail "slow client got json"
              | Error e -> Alcotest.failf "slow read: %s" (Codec.error_to_string e))))

let test_conn_out_limit_disconnects () =
  with_loop (fun loop ->
      with_socketpair (fun srv cli ->
          let reason = ref None in
          let big = String.make 65536 'z' in
          let _ =
            on_loop loop (fun () ->
                Conn.attach loop srv ~out_limit:1024
                  ~on_frame:(fun c _ ->
                    (* Reply with far more than the peer will read: once
                       the socket jams, the bounded buffer must cut the
                       connection loose instead of growing. *)
                    for _ = 1 to 256 do
                      Conn.send c big
                    done)
                  ~on_closed:(fun _ r -> reason := Some r)
                  ())
          in
          (match Codec.write cli Codec.Binary "{\"go\":1}" with
          | Ok () -> ()
          | Error e -> Alcotest.failf "write: %s" (Codec.error_to_string e));
          (* Never read from [cli]. *)
          wait_for "out-limit close" (fun () -> !reason <> None);
          match !reason with
          | Some (Conn.Fault (Codec.Io _)) -> ()
          | Some r ->
            Alcotest.failf "expected io fault, got %s"
              (Conn.close_reason_to_string r)
          | None -> assert false))

let test_conn_close_after_flush () =
  with_loop (fun loop ->
      with_socketpair (fun srv cli ->
          let reason = ref None in
          let _ =
            on_loop loop (fun () ->
                Conn.attach loop srv
                  ~on_frame:(fun c payload ->
                    Conn.send c payload;
                    Conn.close_after_flush c)
                  ~on_closed:(fun _ r -> reason := Some r)
                  ())
          in
          (match Codec.write cli Codec.Binary "{\"bye\":1}" with
          | Ok () -> ()
          | Error e -> Alcotest.failf "write: %s" (Codec.error_to_string e));
          (* The farewell frame arrives, then a clean EOF. *)
          let r = Codec.reader cli in
          (match Codec.read r with
          | Ok (Codec.Binary, p) -> check Alcotest.string "farewell" "{\"bye\":1}" p
          | Ok _ -> Alcotest.fail "expected binary farewell"
          | Error e -> Alcotest.failf "read: %s" (Codec.error_to_string e));
          (match Codec.read r with
          | Error Codec.Closed -> ()
          | Ok _ -> Alcotest.fail "expected eof after farewell"
          | Error e -> Alcotest.failf "expected closed, got %s"
                         (Codec.error_to_string e));
          wait_for "local close" (fun () -> !reason = Some Conn.Local)))

let () =
  Alcotest.run "net"
    [
      ( "bytebuf",
        [
          Alcotest.test_case "fifo append/consume" `Quick test_bytebuf_fifo;
          Alcotest.test_case "reserve/commit across compaction" `Quick
            test_bytebuf_reserve_commit;
        ] );
      ( "codec",
        [
          Alcotest.test_case "round-trip both modes" `Quick test_codec_roundtrip;
          Alcotest.test_case "interleaved, byte at a time" `Quick
            test_codec_interleaved_incremental;
          Alcotest.test_case "bad length prefixes are typed and sticky" `Quick
            test_codec_bad_length_prefixes;
          Alcotest.test_case "oversized json line" `Quick
            test_codec_oversized_json;
          Alcotest.test_case "blocking round-trip and clean close" `Quick
            test_codec_blocking_roundtrip;
          Alcotest.test_case "blocking eof mid-frame" `Quick
            test_codec_blocking_eof_mid_frame;
          Alcotest.test_case "poll times out then delivers" `Quick
            test_codec_poll_timeout;
        ] );
      ( "loop",
        [
          Alcotest.test_case "post and timers in order" `Quick
            test_loop_post_and_timers;
          Alcotest.test_case "nudge runs on_wake" `Quick
            test_loop_nudge_runs_on_wake;
        ] );
      ( "conn",
        [
          Alcotest.test_case "echo latches reply mode" `Quick
            test_conn_echo_latches_mode;
          Alcotest.test_case "hostile length prefix faults" `Quick
            test_conn_hostile_header_faults;
          Alcotest.test_case "slowloris does not starve others" `Quick
            test_conn_slowloris_does_not_starve;
          Alcotest.test_case "output limit disconnects non-reader" `Quick
            test_conn_out_limit_disconnects;
          Alcotest.test_case "close after flush delivers farewell" `Quick
            test_conn_close_after_flush;
        ] );
    ]
