(* Tests for the telemetry layer: JSON round-trips, counter atomicity
   under the domain pool, span nesting in trace files, trace-file
   validation, and the bit-identity guarantee — instrumentation must
   never change computed results. *)

let check = Alcotest.check

(* ---- Json -------------------------------------------------------------- *)

let round_trip v =
  let s = Obs.Json.to_string v in
  match Obs.Json.of_string s with
  | Ok v' -> check Alcotest.bool (Printf.sprintf "round-trip %s" s) true (v = v')
  | Error e -> Alcotest.failf "reparse of %s failed: %s" s e

let test_json_round_trip () =
  List.iter round_trip
    [
      Obs.Json.Null;
      Obs.Json.Bool true;
      Obs.Json.Bool false;
      Obs.Json.Int 0;
      Obs.Json.Int (-42);
      Obs.Json.Int max_int;
      Obs.Json.Float 0.0;
      Obs.Json.Float 1.5;
      Obs.Json.Float 3.14159265358979312;
      Obs.Json.Float 1e-300;
      Obs.Json.Float 1785955230.1727901;
      Obs.Json.Str "";
      Obs.Json.Str "plain";
      Obs.Json.Str "quotes \" backslash \\ newline \n tab \t";
      Obs.Json.Str "unicode: \xc3\xa9\xe2\x82\xac";
      Obs.Json.List [];
      Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Str "two"; Obs.Json.Null ];
      Obs.Json.Obj [];
      Obs.Json.Obj
        [
          ("a", Obs.Json.Int 1);
          ("nested", Obs.Json.Obj [ ("b", Obs.Json.List [ Obs.Json.Bool false ]) ]);
        ];
    ]

let test_json_parse_forms () =
  (* Numbers without . / e / E parse as Int, everything else as Float. *)
  check Alcotest.bool "int form" true
    (Obs.Json.of_string "12" = Ok (Obs.Json.Int 12));
  check Alcotest.bool "float form" true
    (Obs.Json.of_string "1.5e3" = Ok (Obs.Json.Float 1500.0));
  check Alcotest.bool "unicode escape" true
    (Obs.Json.of_string "\"\\u0041\"" = Ok (Obs.Json.Str "A"));
  (* Non-finite floats print as null (JSON has no representation). *)
  check Alcotest.string "nan is null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.nan));
  check Alcotest.string "inf is null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity));
  (match Obs.Json.of_string "{\"a\":" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated object should not parse");
  match Obs.Json.of_string "[1, 2] trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage should not parse"

(* ---- Metrics under the domain pool ------------------------------------- *)

let with_pool jobs f =
  let pool = Prelude.Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Prelude.Pool.shutdown pool) (fun () -> f pool)

let test_counter_atomic_under_pool () =
  (* 4 domains hammering one counter: every increment must land.  The
     registry is process-wide and never resets, so measure the delta. *)
  let c = Obs.Metrics.counter "test.obs.atomic" in
  let h = Obs.Metrics.hist "test.obs.hist" in
  let before = Obs.Metrics.value c in
  let hn = Obs.Metrics.hist_count h in
  let hs = Obs.Metrics.hist_sum h in
  let n = 10_000 in
  let _ =
    with_pool 4 (fun pool ->
        Prelude.Pool.init pool n (fun i ->
            Obs.Metrics.add c 1;
            Obs.Metrics.observe h 0.5;
            i))
  in
  check Alcotest.int "all increments landed" (before + n) (Obs.Metrics.value c);
  check Alcotest.int "all observations landed" (hn + n)
    (Obs.Metrics.hist_count h);
  check (Alcotest.float 1e-6) "sum exact" (hs +. (0.5 *. float_of_int n))
    (Obs.Metrics.hist_sum h)

let test_metrics_kind_mismatch () =
  let _ = Obs.Metrics.counter "test.obs.kind" in
  match Obs.Metrics.gauge "test.obs.kind" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "reusing a counter name as a gauge should raise"

let test_gauge_no_torn_reads () =
  (* Two domains flip the gauge between two doubles whose halves all
     differ while two more read it flat out: every read must be one of
     the written values bit-for-bit — a torn read would mix halves and
     produce a third value. *)
  let g = Obs.Metrics.gauge "test.obs.torn" in
  let a = Int64.float_of_bits 0x0102030405060708L in
  let b = Int64.float_of_bits 0x4807060504030201L in
  Obs.Metrics.set g a;
  let stop = Atomic.make false in
  let torn = Atomic.make 0 in
  let writer v =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Obs.Metrics.set g v
        done)
  in
  let reader () =
    Domain.spawn (fun () ->
        for _ = 1 to 200_000 do
          let v = Obs.Metrics.gauge_value g in
          if not (v = a || v = b) then Atomic.incr torn
        done)
  in
  let writers = [ writer a; writer b ] in
  let readers = [ reader (); reader () ] in
  List.iter Domain.join readers;
  Atomic.set stop true;
  List.iter Domain.join writers;
  check Alcotest.int "no torn reads" 0 (Atomic.get torn);
  check Alcotest.bool "last write visible" true
    (let v = Obs.Metrics.gauge_value g in
     v = a || v = b)

(* ---- histogram buckets and quantiles ----------------------------------- *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let check_contains ~msg needle hay =
  if not (contains ~needle hay) then
    Alcotest.failf "%s: %S not found in:\n%s" msg needle hay

let test_hist_bucket_geometry () =
  (* Golden boundaries: the ladder is a pure formula, so these numbers
     must never drift — merging across processes depends on it. *)
  check Alcotest.int "bucket count" 176 Obs.Metrics.n_buckets;
  check (Alcotest.float 1e-24) "bucket 0 upper bound" 1e-9
    (Obs.Metrics.bucket_upper 0);
  check (Alcotest.float 1e-24) "one octave up doubles" 2e-9
    (Obs.Metrics.bucket_upper 4);
  check (Alcotest.float 1e-12) "thirty octaves up" 1.073741824
    (Obs.Metrics.bucket_upper 120);
  check Alcotest.bool "overflow bucket is unbounded" true
    (Obs.Metrics.bucket_upper Obs.Metrics.n_buckets = Float.infinity);
  let ratio = Float.pow 2.0 0.25 in
  for i = 1 to Obs.Metrics.n_buckets - 1 do
    let prev = Obs.Metrics.bucket_upper (i - 1) in
    let cur = Obs.Metrics.bucket_upper i in
    if cur <= prev then Alcotest.failf "ladder not monotonic at %d" i;
    check (Alcotest.float 1e-9)
      (Printf.sprintf "quarter-octave ratio at %d" i)
      ratio (cur /. prev)
  done;
  (* Indexing: upper bounds are inclusive; everything at or below the
     floor (including junk) lands in bucket 0, everything above the top
     in the overflow bucket. *)
  for i = 0 to Obs.Metrics.n_buckets - 1 do
    if Obs.Metrics.bucket_index (Obs.Metrics.bucket_upper i) <> i then
      Alcotest.failf "upper bound of bucket %d does not index to itself" i
  done;
  check Alcotest.int "just above a bound moves up" 4
    (Obs.Metrics.bucket_index (Obs.Metrics.bucket_upper 3 *. 1.000001));
  check Alcotest.int "below the floor" 0 (Obs.Metrics.bucket_index 1e-12);
  check Alcotest.int "zero" 0 (Obs.Metrics.bucket_index 0.0);
  check Alcotest.int "negative" 0 (Obs.Metrics.bucket_index (-1.0));
  check Alcotest.int "nan" 0 (Obs.Metrics.bucket_index Float.nan);
  check Alcotest.int "huge overflows" Obs.Metrics.n_buckets
    (Obs.Metrics.bucket_index 1e9)

let test_hist_quantile_error_bound () =
  (* Against the exact Prelude.Stats.percentile: the bucket estimate
     must never undershoot and overshoot by less than one bucket's
     relative width (2^(1/4) - 1). *)
  let slack = Float.pow 2.0 0.25 *. (1.0 +. 1e-9) in
  let distributions =
    [
      ("uniform", Array.init 1000 (fun i -> 1e-4 +. (float_of_int i *. 1e-5)));
      ( "geometric",
        Array.init 500 (fun i -> 1e-6 *. Float.pow 1.03 (float_of_int i)) );
      ( "bimodal",
        Array.init 400 (fun i -> if i mod 2 = 0 then 3e-4 else 7e-2) );
      ("singleton", [| 0.0421 |]);
    ]
  in
  List.iteri
    (fun ci (label, samples) ->
      let h = Obs.Metrics.hist (Printf.sprintf "test.obs.qbound.%d" ci) in
      Array.iter (Obs.Metrics.observe h) samples;
      List.iter
        (fun q ->
          let est = Obs.Metrics.quantile h q in
          let exact = Prelude.Stats.percentile samples (q *. 100.0) in
          if est < exact *. (1.0 -. 1e-9) then
            Alcotest.failf "%s p%g: estimate %g undershoots exact %g" label
              (q *. 100.0) est exact;
          if est > exact *. slack then
            Alcotest.failf "%s p%g: estimate %g > %g (exact %g + one bucket)"
              label (q *. 100.0) est (exact *. slack) exact)
        [ 0.0; 0.5; 0.9; 0.99; 1.0 ])
    distributions;
  (* Empty histogram: no answer, not a wrong one. *)
  let e = Obs.Metrics.hist "test.obs.qbound.empty" in
  check Alcotest.bool "empty quantile is nan" true
    (Float.is_nan (Obs.Metrics.quantile e 0.5))

(* The live JSON fragment of one registered histogram. *)
let hist_json name =
  match Obs.Json.member "histograms" (Obs.Metrics.snapshot ()) with
  | Some hs -> (
    match Obs.Json.member name hs with
    | Some j -> j
    | None -> Alcotest.failf "snapshot lacks histogram %s" name)
  | None -> Alcotest.fail "snapshot lacks histograms"

let test_hist_merge_associative () =
  let mk i samples =
    let name = Printf.sprintf "test.obs.merge.%d" i in
    let h = Obs.Metrics.hist name in
    List.iter (Obs.Metrics.observe h) samples;
    hist_json name
  in
  let a = mk 0 [ 1e-4; 2e-4; 3e-4 ]
  and b = mk 1 [ 5e-2; 6e-2 ]
  and c = mk 2 [ 9.0; 1e-8; 0.5 ] in
  let merge x y =
    match Obs.Metrics.merge_hist_json x y with
    | Some m -> m
    | None -> Alcotest.fail "same-scheme merge refused"
  in
  check Alcotest.bool "merge is associative" true
    (merge (merge a b) c = merge a (merge b c));
  check Alcotest.bool "merge is commutative" true (merge a b = merge b a);
  let m = merge (merge a b) c in
  check Alcotest.(option int) "counts add" (Some 8)
    (Option.bind (Obs.Json.member "count" m) Obs.Json.to_int);
  check Alcotest.bool "max is the overall max" true
    (Option.bind (Obs.Json.member "max" m) Obs.Json.to_float = Some 9.0);
  (* Merged quantiles still answer (the p99 must reach into c's 9.0
     sample's bucket neighbourhood). *)
  (match Obs.Metrics.quantile_of_json m 0.99 with
  | Some q -> check Alcotest.bool "merged p99 in range" true (q > 0.5 && q <= 9.0)
  | None -> Alcotest.fail "merged histogram lost its buckets");
  (* A foreign scheme is refused, not silently mis-merged. *)
  let foreign =
    Obs.Json.Obj
      [
        ("count", Obs.Json.Int 1); ("sum", Obs.Json.Float 1.0);
        ("scheme", Obs.Json.Str "someone-elses");
        ("buckets", Obs.Json.List []);
      ]
  in
  check Alcotest.bool "foreign scheme refused" true
    (Obs.Metrics.merge_hist_json a foreign = None)

let test_snapshot_merge_and_delta () =
  let snap counters hists =
    Obs.Json.Obj
      [
        ("counters", Obs.Json.Obj counters);
        ("gauges", Obs.Json.Obj []);
        ("histograms", Obs.Json.Obj hists);
      ]
  in
  let s1 = snap [ ("x", Obs.Json.Int 2) ] []
  and s2 = snap [ ("x", Obs.Json.Int 3); ("y", Obs.Json.Int 1) ] [] in
  let m = Obs.Metrics.merge_snapshots [ s1; s2 ] in
  let counter name =
    Option.bind (Obs.Json.member "counters" m) (fun c ->
        Option.bind (Obs.Json.member name c) Obs.Json.to_int)
  in
  check Alcotest.(option int) "shared counter adds" (Some 5) (counter "x");
  check Alcotest.(option int) "lone counter kept" (Some 1) (counter "y");
  (* Windowing: the delta of two snapshots of one growing histogram is
     exactly the samples in between. *)
  let name = "test.obs.delta" in
  let h = Obs.Metrics.hist name in
  List.iter (Obs.Metrics.observe h) [ 1e-3; 2e-3 ];
  let before = hist_json name in
  List.iter (Obs.Metrics.observe h) [ 5e-2; 6e-2; 7e-2 ];
  let after = hist_json name in
  match Obs.Metrics.delta_hist_json ~prev:before after with
  | None -> Alcotest.fail "delta refused"
  | Some d ->
    check Alcotest.(option int) "window count" (Some 3)
      (Option.bind (Obs.Json.member "count" d) Obs.Json.to_int);
    (match Obs.Metrics.quantile_of_json d 0.5 with
    | Some p50 ->
      (* The window only saw the 5..7e-2 samples; its median must sit
         near them, not near the older millisecond samples. *)
      check Alcotest.bool "window median in the window" true
        (p50 > 4e-2 && p50 < 8e-2)
    | None -> Alcotest.fail "delta lost its buckets");
    check Alcotest.bool "fresh delta of identical snapshots is empty" true
      (match Obs.Metrics.delta_hist_json ~prev:after after with
      | Some d -> Obs.Json.member "count" d = Some (Obs.Json.Int 0)
      | None -> false)

let test_prom_render () =
  check Alcotest.string "mangling" "serve_request_seconds"
    (Obs.Prom.mangle "serve.request.seconds");
  let c = Obs.Metrics.counter "test.prom.requests" in
  Obs.Metrics.add c 3;
  let g = Obs.Metrics.gauge "test.prom.depth" in
  Obs.Metrics.set g 2.0;
  let h = Obs.Metrics.hist "test.prom.seconds" in
  List.iter (Obs.Metrics.observe h) [ 1e-3; 2e-3; 4e-3; 10.0 ];
  let body = Obs.Prom.render (Obs.Metrics.snapshot ()) in
  check_contains ~msg:"counter type" "# TYPE test_prom_requests counter" body;
  check_contains ~msg:"counter sample" "test_prom_requests 3" body;
  check_contains ~msg:"gauge type" "# TYPE test_prom_depth gauge" body;
  check_contains ~msg:"histogram type" "# TYPE test_prom_seconds histogram"
    body;
  check_contains ~msg:"+Inf bucket closes the ladder"
    "test_prom_seconds_bucket{le=\"+Inf\"} 4" body;
  check_contains ~msg:"count" "test_prom_seconds_count 4" body;
  check_contains ~msg:"sum" "test_prom_seconds_sum" body;
  check_contains ~msg:"sibling quantile family"
    "# TYPE test_prom_seconds_quantile gauge" body;
  check_contains ~msg:"p99 quantile"
    "test_prom_seconds_quantile{quantile=\"0.99\"}" body;
  check_contains ~msg:"max as quantile 1"
    "test_prom_seconds_quantile{quantile=\"1\"} 10" body

(* ---- cross-process stitching ------------------------------------------- *)

let j_obj = fun fields -> Obs.Json.Obj fields
let js s = Obs.Json.Str s
let ji i = Obs.Json.Int i
let jf f = Obs.Json.Float f

let manifest2 ~process ~tid =
  j_obj
    [
      ("ev", js "manifest"); ("ts", jf 0.0); ("seq", ji 0); ("version", ji 2);
      ("process", js process); ("trace_id", js tid);
    ]

let span_begin ?parent ?remote ~seq ~id ~ts name =
  j_obj
    ([ ("ev", js "span_begin"); ("ts", jf ts); ("seq", ji seq); ("id", ji id);
       ("name", js name);
       ("parent", match parent with Some p -> ji p | None -> Obs.Json.Null) ]
    @
    match remote with
    | Some (p, s) ->
      [ ("remote", j_obj [ ("process", js p); ("span", ji s) ]) ]
    | None -> [])

let span_end ~seq ~id ~dur name =
  j_obj
    [
      ("ev", js "span_end"); ("ts", jf (dur +. 1.0)); ("seq", ji seq);
      ("id", ji id); ("name", js name); ("dur_s", jf dur); ("cpu_s", jf dur);
      ("ok", Obs.Json.Bool true);
    ]

let coord_events =
  [
    manifest2 ~process:"coord" ~tid:"cafe01";
    span_begin ~seq:1 ~id:1 ~ts:1.0 "train";
    span_begin ~parent:1 ~seq:2 ~id:2 ~ts:1.2 "cluster.evaluate";
    span_end ~seq:3 ~id:2 ~dur:4.0 "cluster.evaluate";
    span_end ~seq:4 ~id:1 ~dur:5.0 "train";
    j_obj [ ("ev", js "stop"); ("ts", jf 6.0); ("seq", ji 5); ("dur_s", jf 6.0) ];
  ]

let worker_events ~remote_span =
  [
    manifest2 ~process:"worker-0" ~tid:"cafe01";
    span_begin
      ~remote:("coord", remote_span)
      ~seq:1 ~id:1 ~ts:2.0 "cluster.lease";
    span_begin ~parent:1 ~seq:2 ~id:2 ~ts:2.1 "store.profile";
    span_end ~seq:3 ~id:2 ~dur:1.5 "store.profile";
    span_end ~seq:4 ~id:1 ~dur:2.0 "cluster.lease";
  ]

let test_stitch_joins_remote_parents () =
  let t =
    Obs.Stitch.stitch
      [
        ("coord.jsonl", coord_events);
        ("w0.jsonl", worker_events ~remote_span:2);
      ]
  in
  check Alcotest.int "no orphans" 0 (Obs.Stitch.orphan_count t);
  check Alcotest.int "one causal root" 1 (List.length t.Obs.Stitch.roots);
  check Alcotest.(list string) "one trace id" [ "cafe01" ]
    t.Obs.Stitch.trace_ids;
  let root = List.hd t.Obs.Stitch.roots in
  check Alcotest.string "root is the coordinator's train span" "train"
    root.Obs.Stitch.name;
  (* The worker's lease hangs under the coordinator's evaluate span. *)
  let evaluate = List.hd root.Obs.Stitch.children in
  check Alcotest.string "evaluate below train" "cluster.evaluate"
    evaluate.Obs.Stitch.name;
  (match evaluate.Obs.Stitch.children with
  | [ lease ] ->
    check Alcotest.string "lease crossed processes" "cluster.lease"
      lease.Obs.Stitch.name;
    check Alcotest.string "lease kept its process" "worker-0"
      lease.Obs.Stitch.process
  | l -> Alcotest.failf "expected one lease child, got %d" (List.length l));
  (* Critical path walks into the worker. *)
  let path = Obs.Stitch.critical_path t in
  check
    Alcotest.(list string)
    "critical path"
    [ "train"; "cluster.evaluate"; "cluster.lease"; "store.profile" ]
    (List.map (fun s -> s.Obs.Stitch.name) path);
  (* Cross-process children overlap the parent instead of consuming it:
     the coordinator's self time ignores the worker's 2 s. *)
  let self p = List.assoc p (Obs.Stitch.per_process_self t) in
  check (Alcotest.float 1e-9) "coord self" 5.0 (self "coord");
  check (Alcotest.float 1e-9) "worker self" 2.0 (self "worker-0");
  let rendered = Obs.Stitch.render t in
  check_contains ~msg:"zero-orphan line" "orphan spans: 0" rendered;
  check_contains ~msg:"tree crosses processes" "cluster.lease @worker-0"
    rendered

let test_stitch_counts_orphans () =
  (* The worker's remote parent points at a span the coordinator never
     wrote: the lease must surface as an orphan, not vanish. *)
  let t =
    Obs.Stitch.stitch
      [
        ("coord.jsonl", coord_events);
        ("w0.jsonl", worker_events ~remote_span:99);
      ]
  in
  check Alcotest.int "dangling remote is an orphan" 1
    (Obs.Stitch.orphan_count t);
  check_contains ~msg:"orphans rendered" "orphan spans: 1"
    (Obs.Stitch.render t);
  check_contains ~msg:"orphan names its missing parent" "remote coord/99"
    (Obs.Stitch.render t)

let test_stitch_v1_files_load () =
  (* A v1 trace has no process/trace_id; the file name becomes the
     process identity and its spans form their own tree. *)
  let v1 =
    [
      j_obj
        [
          ("ev", js "manifest"); ("ts", jf 0.0); ("seq", ji 0);
          ("version", ji 1);
        ];
      span_begin ~seq:1 ~id:1 ~ts:0.5 "run";
      span_end ~seq:2 ~id:1 ~dur:1.0 "run";
    ]
  in
  let t =
    Obs.Stitch.stitch
      [ ("coord.jsonl", coord_events); ("/tmp/old-v1.jsonl", v1) ]
  in
  check Alcotest.int "no orphans" 0 (Obs.Stitch.orphan_count t);
  check Alcotest.int "two independent roots" 2
    (List.length t.Obs.Stitch.roots);
  let old =
    List.find
      (fun p -> p.Obs.Stitch.p_version = 1)
      t.Obs.Stitch.processes
  in
  check Alcotest.string "file name is the identity" "old-v1.jsonl"
    old.Obs.Stitch.p_name

(* ---- Spans and trace files --------------------------------------------- *)

let field name r = Option.get (Obs.Json.member name r)
let str_field name r = Option.get (Obs.Json.to_str (field name r))
let int_field name r = Option.get (Obs.Json.to_int (field name r))

let events_of_kind kind events =
  List.filter (fun r -> Obs.Json.member "ev" r = Some (Obs.Json.Str kind)) events

let with_trace f =
  (* Route a fresh trace through a temp file and hand the validated,
     parsed events to the caller. *)
  let path = Filename.temp_file "test_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.Trace.start ~manifest:[ ("cmd", Obs.Json.Str "test") ] path;
      Fun.protect ~finally:Obs.Trace.stop f;
      Obs.Trace.stop ();
      match Obs.Trace.validate_file path with
      | Ok events -> events
      | Error e -> Alcotest.failf "trace did not validate: %s" e)

let test_span_nesting () =
  let events =
    with_trace (fun () ->
        Obs.Span.with_ "test.outer" (fun () ->
            Obs.Span.with_ "test.inner" (fun () ->
                Obs.Span.event "test.leaf" [ ("k", Obs.Json.Int 7) ])))
  in
  let begins = events_of_kind "span_begin" events in
  let ends = events_of_kind "span_end" events in
  check Alcotest.int "two begins" 2 (List.length begins);
  check Alcotest.int "two ends" 2 (List.length ends);
  let find_begin name =
    List.find (fun r -> str_field "name" r = name) begins
  in
  let outer = find_begin "test.outer" and inner = find_begin "test.inner" in
  check Alcotest.bool "outer is a root span" true
    (field "parent" outer = Obs.Json.Null);
  check Alcotest.int "inner nests under outer" (int_field "id" outer)
    (int_field "parent" inner);
  let leaf = List.hd (events_of_kind "event" events) in
  check Alcotest.int "leaf parented to innermost span" (int_field "id" inner)
    (int_field "parent" leaf);
  check Alcotest.int "leaf keeps its fields" 7 (int_field "k" leaf);
  (* Begin/end ordering by seq: outer opens first, closes last. *)
  let seq name kind =
    int_field "seq"
      (List.find
         (fun r -> str_field "name" r = name)
         (events_of_kind kind events))
  in
  check Alcotest.bool "outer begins before inner" true
    (seq "test.outer" "span_begin" < seq "test.inner" "span_begin");
  check Alcotest.bool "inner ends before outer" true
    (seq "test.inner" "span_end" < seq "test.outer" "span_end");
  let ender = List.find (fun r -> str_field "name" r = "test.outer") ends in
  check Alcotest.bool "clean exit" true (field "ok" ender = Obs.Json.Bool true);
  (* Well-formed tail: metrics snapshot then stop. *)
  check Alcotest.int "one metrics event" 1
    (List.length (events_of_kind "metrics" events));
  check Alcotest.int "one stop event" 1
    (List.length (events_of_kind "stop" events))

let test_span_failure_recorded () =
  let events =
    with_trace (fun () ->
        try Obs.Span.with_ "test.fails" (fun () -> failwith "boom")
        with Failure _ -> ())
  in
  let e =
    List.find
      (fun r -> str_field "name" r = "test.fails")
      (events_of_kind "span_end" events)
  in
  check Alcotest.bool "failure recorded" true
    (field "ok" e = Obs.Json.Bool false)

let test_pool_events_keep_parent () =
  (* Fan-out over the pool: tasks run on other domains, whose DLS span
     stacks are empty — events stay parented via the explicit id. *)
  let events =
    with_trace (fun () ->
        Obs.Span.with_ "test.fanout" (fun () ->
            let parent = Obs.Span.current_id () in
            let _ =
              with_pool 4 (fun pool ->
                  Prelude.Pool.init pool 16 (fun i ->
                      Obs.Span.event ~parent "test.task"
                        [ ("i", Obs.Json.Int i) ];
                      i))
            in
            ()))
  in
  let begins = events_of_kind "span_begin" events in
  let fanout =
    List.find (fun r -> str_field "name" r = "test.fanout") begins
  in
  let tasks =
    List.filter
      (fun r -> str_field "name" r = "test.task")
      (events_of_kind "event" events)
  in
  check Alcotest.int "all task events recorded" 16 (List.length tasks);
  List.iter
    (fun t ->
      check Alcotest.int "task parented across domains"
        (int_field "id" fanout) (int_field "parent" t))
    tasks

let test_validate_rejects_malformed () =
  let write lines =
    let path = Filename.temp_file "test_obs_bad" ".jsonl" in
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    let r = Obs.Trace.validate_file path in
    Sys.remove path;
    r
  in
  let manifest =
    {|{"ev":"manifest","ts":0.0,"seq":0,"version":1,"unix_time":0.0,"git":"g","argv":[],"env":{}}|}
  in
  let expect_error what = function
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s should not validate" what
  in
  expect_error "empty file" (write []);
  expect_error "missing manifest"
    (write [ {|{"ev":"log","ts":0.0,"seq":0,"msg":"hi"}|} ]);
  expect_error "seq gap"
    (write [ manifest; {|{"ev":"log","ts":0.0,"seq":5,"msg":"hi"}|} ]);
  expect_error "unknown event type"
    (write [ manifest; {|{"ev":"mystery","ts":0.0,"seq":1}|} ]);
  expect_error "missing required field"
    (write
       [ manifest; {|{"ev":"span_end","ts":0.0,"seq":1,"id":1,"name":"x"}|} ]);
  expect_error "wrong field type"
    (write [ manifest; {|{"ev":"log","ts":0.0,"seq":1,"msg":12}|} ]);
  match write [ manifest; {|{"ev":"log","ts":0.1,"seq":1,"msg":"hi"}|} ] with
  | Ok events -> check Alcotest.int "valid file parses" 2 (List.length events)
  | Error e -> Alcotest.failf "valid file rejected: %s" e

(* ---- trace v2 manifest and remote span propagation --------------------- *)

let test_trace_v2_manifest_and_remote () =
  let path = Filename.temp_file "test_obs_v2" ".jsonl" in
  let events =
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Obs.Trace.start ~trace_id:"feedbeef" ~process:"proc-a" path;
        check Alcotest.(option string) "trace id exposed" (Some "feedbeef")
          (Obs.Trace.trace_id ());
        check Alcotest.(option string) "process exposed" (Some "proc-a")
          (Obs.Trace.process_name ());
        check Alcotest.(option string) "path exposed" (Some path)
          (Obs.Trace.path ());
        Fun.protect ~finally:Obs.Trace.stop (fun () ->
            Obs.Span.with_ "test.root" (fun () ->
                (match Obs.Span.current_context () with
                | Some ctx ->
                  check Alcotest.string "context trace id" "feedbeef"
                    ctx.Obs.Span.trace_id;
                  check Alcotest.string "context process" "proc-a"
                    ctx.Obs.Span.process;
                  check Alcotest.bool "context span id set" true
                    (ctx.Obs.Span.span <> None)
                | None -> Alcotest.fail "no context inside an active trace"));
            Obs.Span.with_
              ~remote_parent:
                {
                  Obs.Span.trace_id = "feedbeef";
                  process = "coord";
                  span = Some 7;
                }
              "test.entry"
              (fun () -> ()));
        match Obs.Trace.validate_file path with
        | Ok events -> events
        | Error e -> Alcotest.failf "v2 trace did not validate: %s" e)
  in
  check Alcotest.(option string) "no sink, no context" None
    (Option.map (fun _ -> "ctx") (Obs.Span.current_context ()));
  let manifest = List.hd events in
  check Alcotest.int "manifest version 2" 2 (int_field "version" manifest);
  check Alcotest.string "manifest trace id" "feedbeef"
    (str_field "trace_id" manifest);
  check Alcotest.string "manifest process" "proc-a"
    (str_field "process" manifest);
  let entry =
    List.find
      (fun r -> str_field "name" r = "test.entry")
      (events_of_kind "span_begin" events)
  in
  let remote = field "remote" entry in
  check Alcotest.string "remote process recorded" "coord"
    (str_field "process" remote);
  check Alcotest.int "remote span recorded" 7 (int_field "span" remote);
  (* And the whole file stitches against a synthetic coordinator that
     owns span 7. *)
  let coord =
    [
      manifest2 ~process:"coord" ~tid:"feedbeef";
      span_begin ~seq:1 ~id:7 ~ts:0.0 "serve.request";
      span_end ~seq:2 ~id:7 ~dur:1.0 "serve.request";
    ]
  in
  let t = Obs.Stitch.stitch [ ("coord.jsonl", coord); (path, events) ] in
  check Alcotest.int "real trace stitches clean" 0 (Obs.Stitch.orphan_count t)

let test_ticker_renders_eta () =
  let lines = ref [] in
  let tick =
    Obs.Span.ticker
      ~print:(fun l -> lines := l :: !lines)
      ~every:2 ~total:4 "test-ticks"
  in
  tick "a";
  tick "b";
  tick "c";
  tick "d";
  match List.rev !lines with
  | [ first; second ] ->
    let has_prefix p s =
      String.length s >= String.length p && String.sub s 0 (String.length p) = p
    in
    check Alcotest.bool "halfway line" true (has_prefix "test-ticks 2/4" first);
    check Alcotest.bool "final line" true (has_prefix "test-ticks 4/4" second);
    check Alcotest.bool "detail carried" true
      (String.length second >= 1
      && String.sub second (String.length second - 1) 1 = "d")
  | other -> Alcotest.failf "expected 2 lines every=2, got %d" (List.length other)

(* ---- Bit-identity: tracing must not change results --------------------- *)

let micro_scale =
  {
    Ml_model.Dataset.n_uarchs = 2;
    n_opts = 6;
    seed = 31;
    space = Ml_model.Features.Base;
    good_fraction = 0.2;
  }

let test_tracing_preserves_golden_numbers () =
  (* The acceptance bar for the whole layer: a traced run at Debug
     verbosity produces bit-identical datasets and cross-validation
     outcomes to an untraced run. *)
  let quiet =
    with_pool 4 (fun pool ->
        let d = Ml_model.Dataset.generate ~pool micro_scale in
        (d, Ml_model.Crossval.run ~pool d))
  in
  let path = Filename.temp_file "test_obs_identity" ".jsonl" in
  let traced =
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.set_level Obs.Trace.Info;
        try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Obs.Trace.start path;
        Obs.Trace.set_level Obs.Trace.Debug;
        Fun.protect ~finally:Obs.Trace.stop (fun () ->
            with_pool 4 (fun pool ->
                let d = Ml_model.Dataset.generate ~pool micro_scale in
                (d, Ml_model.Crossval.run ~pool d))))
  in
  let (d0, o0) = quiet and (d1, o1) = traced in
  check Alcotest.bool "pairs bit-identical" true
    (d0.Ml_model.Dataset.pairs = d1.Ml_model.Dataset.pairs);
  check Alcotest.bool "settings identical" true
    (d0.Ml_model.Dataset.settings = d1.Ml_model.Dataset.settings);
  check Alcotest.bool "outcomes bit-identical" true (o0 = o1)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "parse forms" `Quick test_json_parse_forms;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter atomic under pool" `Quick
            test_counter_atomic_under_pool;
          Alcotest.test_case "kind mismatch" `Quick test_metrics_kind_mismatch;
          Alcotest.test_case "gauge never tears under domains" `Quick
            test_gauge_no_torn_reads;
        ] );
      ( "hist",
        [
          Alcotest.test_case "golden bucket geometry" `Quick
            test_hist_bucket_geometry;
          Alcotest.test_case "quantile error vs exact percentile" `Quick
            test_hist_quantile_error_bound;
          Alcotest.test_case "merge associative and schemed" `Quick
            test_hist_merge_associative;
          Alcotest.test_case "snapshot merge and window delta" `Quick
            test_snapshot_merge_and_delta;
          Alcotest.test_case "prometheus exposition" `Quick test_prom_render;
        ] );
      ( "stitch",
        [
          Alcotest.test_case "remote parents join processes" `Quick
            test_stitch_joins_remote_parents;
          Alcotest.test_case "dangling parents are orphans" `Quick
            test_stitch_counts_orphans;
          Alcotest.test_case "v1 files still load" `Quick
            test_stitch_v1_files_load;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span failure" `Quick test_span_failure_recorded;
          Alcotest.test_case "pool parentage" `Quick
            test_pool_events_keep_parent;
          Alcotest.test_case "validation negatives" `Quick
            test_validate_rejects_malformed;
          Alcotest.test_case "v2 manifest and remote spans" `Quick
            test_trace_v2_manifest_and_remote;
          Alcotest.test_case "ticker eta" `Quick test_ticker_renders_eta;
        ] );
      ( "identity",
        [
          Alcotest.test_case "tracing preserves golden numbers" `Slow
            test_tracing_preserves_golden_numbers;
        ] );
    ]
