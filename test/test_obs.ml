(* Tests for the telemetry layer: JSON round-trips, counter atomicity
   under the domain pool, span nesting in trace files, trace-file
   validation, and the bit-identity guarantee — instrumentation must
   never change computed results. *)

let check = Alcotest.check

(* ---- Json -------------------------------------------------------------- *)

let round_trip v =
  let s = Obs.Json.to_string v in
  match Obs.Json.of_string s with
  | Ok v' -> check Alcotest.bool (Printf.sprintf "round-trip %s" s) true (v = v')
  | Error e -> Alcotest.failf "reparse of %s failed: %s" s e

let test_json_round_trip () =
  List.iter round_trip
    [
      Obs.Json.Null;
      Obs.Json.Bool true;
      Obs.Json.Bool false;
      Obs.Json.Int 0;
      Obs.Json.Int (-42);
      Obs.Json.Int max_int;
      Obs.Json.Float 0.0;
      Obs.Json.Float 1.5;
      Obs.Json.Float 3.14159265358979312;
      Obs.Json.Float 1e-300;
      Obs.Json.Float 1785955230.1727901;
      Obs.Json.Str "";
      Obs.Json.Str "plain";
      Obs.Json.Str "quotes \" backslash \\ newline \n tab \t";
      Obs.Json.Str "unicode: \xc3\xa9\xe2\x82\xac";
      Obs.Json.List [];
      Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Str "two"; Obs.Json.Null ];
      Obs.Json.Obj [];
      Obs.Json.Obj
        [
          ("a", Obs.Json.Int 1);
          ("nested", Obs.Json.Obj [ ("b", Obs.Json.List [ Obs.Json.Bool false ]) ]);
        ];
    ]

let test_json_parse_forms () =
  (* Numbers without . / e / E parse as Int, everything else as Float. *)
  check Alcotest.bool "int form" true
    (Obs.Json.of_string "12" = Ok (Obs.Json.Int 12));
  check Alcotest.bool "float form" true
    (Obs.Json.of_string "1.5e3" = Ok (Obs.Json.Float 1500.0));
  check Alcotest.bool "unicode escape" true
    (Obs.Json.of_string "\"\\u0041\"" = Ok (Obs.Json.Str "A"));
  (* Non-finite floats print as null (JSON has no representation). *)
  check Alcotest.string "nan is null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.nan));
  check Alcotest.string "inf is null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity));
  (match Obs.Json.of_string "{\"a\":" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated object should not parse");
  match Obs.Json.of_string "[1, 2] trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage should not parse"

(* ---- Metrics under the domain pool ------------------------------------- *)

let with_pool jobs f =
  let pool = Prelude.Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Prelude.Pool.shutdown pool) (fun () -> f pool)

let test_counter_atomic_under_pool () =
  (* 4 domains hammering one counter: every increment must land.  The
     registry is process-wide and never resets, so measure the delta. *)
  let c = Obs.Metrics.counter "test.obs.atomic" in
  let h = Obs.Metrics.hist "test.obs.hist" in
  let before = Obs.Metrics.value c in
  let hn = Obs.Metrics.hist_count h in
  let hs = Obs.Metrics.hist_sum h in
  let n = 10_000 in
  let _ =
    with_pool 4 (fun pool ->
        Prelude.Pool.init pool n (fun i ->
            Obs.Metrics.add c 1;
            Obs.Metrics.observe h 0.5;
            i))
  in
  check Alcotest.int "all increments landed" (before + n) (Obs.Metrics.value c);
  check Alcotest.int "all observations landed" (hn + n)
    (Obs.Metrics.hist_count h);
  check (Alcotest.float 1e-6) "sum exact" (hs +. (0.5 *. float_of_int n))
    (Obs.Metrics.hist_sum h)

let test_metrics_kind_mismatch () =
  let _ = Obs.Metrics.counter "test.obs.kind" in
  match Obs.Metrics.gauge "test.obs.kind" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "reusing a counter name as a gauge should raise"

(* ---- Spans and trace files --------------------------------------------- *)

let field name r = Option.get (Obs.Json.member name r)
let str_field name r = Option.get (Obs.Json.to_str (field name r))
let int_field name r = Option.get (Obs.Json.to_int (field name r))

let events_of_kind kind events =
  List.filter (fun r -> Obs.Json.member "ev" r = Some (Obs.Json.Str kind)) events

let with_trace f =
  (* Route a fresh trace through a temp file and hand the validated,
     parsed events to the caller. *)
  let path = Filename.temp_file "test_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.Trace.start ~manifest:[ ("cmd", Obs.Json.Str "test") ] path;
      Fun.protect ~finally:Obs.Trace.stop f;
      Obs.Trace.stop ();
      match Obs.Trace.validate_file path with
      | Ok events -> events
      | Error e -> Alcotest.failf "trace did not validate: %s" e)

let test_span_nesting () =
  let events =
    with_trace (fun () ->
        Obs.Span.with_ "test.outer" (fun () ->
            Obs.Span.with_ "test.inner" (fun () ->
                Obs.Span.event "test.leaf" [ ("k", Obs.Json.Int 7) ])))
  in
  let begins = events_of_kind "span_begin" events in
  let ends = events_of_kind "span_end" events in
  check Alcotest.int "two begins" 2 (List.length begins);
  check Alcotest.int "two ends" 2 (List.length ends);
  let find_begin name =
    List.find (fun r -> str_field "name" r = name) begins
  in
  let outer = find_begin "test.outer" and inner = find_begin "test.inner" in
  check Alcotest.bool "outer is a root span" true
    (field "parent" outer = Obs.Json.Null);
  check Alcotest.int "inner nests under outer" (int_field "id" outer)
    (int_field "parent" inner);
  let leaf = List.hd (events_of_kind "event" events) in
  check Alcotest.int "leaf parented to innermost span" (int_field "id" inner)
    (int_field "parent" leaf);
  check Alcotest.int "leaf keeps its fields" 7 (int_field "k" leaf);
  (* Begin/end ordering by seq: outer opens first, closes last. *)
  let seq name kind =
    int_field "seq"
      (List.find
         (fun r -> str_field "name" r = name)
         (events_of_kind kind events))
  in
  check Alcotest.bool "outer begins before inner" true
    (seq "test.outer" "span_begin" < seq "test.inner" "span_begin");
  check Alcotest.bool "inner ends before outer" true
    (seq "test.inner" "span_end" < seq "test.outer" "span_end");
  let ender = List.find (fun r -> str_field "name" r = "test.outer") ends in
  check Alcotest.bool "clean exit" true (field "ok" ender = Obs.Json.Bool true);
  (* Well-formed tail: metrics snapshot then stop. *)
  check Alcotest.int "one metrics event" 1
    (List.length (events_of_kind "metrics" events));
  check Alcotest.int "one stop event" 1
    (List.length (events_of_kind "stop" events))

let test_span_failure_recorded () =
  let events =
    with_trace (fun () ->
        try Obs.Span.with_ "test.fails" (fun () -> failwith "boom")
        with Failure _ -> ())
  in
  let e =
    List.find
      (fun r -> str_field "name" r = "test.fails")
      (events_of_kind "span_end" events)
  in
  check Alcotest.bool "failure recorded" true
    (field "ok" e = Obs.Json.Bool false)

let test_pool_events_keep_parent () =
  (* Fan-out over the pool: tasks run on other domains, whose DLS span
     stacks are empty — events stay parented via the explicit id. *)
  let events =
    with_trace (fun () ->
        Obs.Span.with_ "test.fanout" (fun () ->
            let parent = Obs.Span.current_id () in
            let _ =
              with_pool 4 (fun pool ->
                  Prelude.Pool.init pool 16 (fun i ->
                      Obs.Span.event ~parent "test.task"
                        [ ("i", Obs.Json.Int i) ];
                      i))
            in
            ()))
  in
  let begins = events_of_kind "span_begin" events in
  let fanout =
    List.find (fun r -> str_field "name" r = "test.fanout") begins
  in
  let tasks =
    List.filter
      (fun r -> str_field "name" r = "test.task")
      (events_of_kind "event" events)
  in
  check Alcotest.int "all task events recorded" 16 (List.length tasks);
  List.iter
    (fun t ->
      check Alcotest.int "task parented across domains"
        (int_field "id" fanout) (int_field "parent" t))
    tasks

let test_validate_rejects_malformed () =
  let write lines =
    let path = Filename.temp_file "test_obs_bad" ".jsonl" in
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    let r = Obs.Trace.validate_file path in
    Sys.remove path;
    r
  in
  let manifest =
    {|{"ev":"manifest","ts":0.0,"seq":0,"version":1,"unix_time":0.0,"git":"g","argv":[],"env":{}}|}
  in
  let expect_error what = function
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s should not validate" what
  in
  expect_error "empty file" (write []);
  expect_error "missing manifest"
    (write [ {|{"ev":"log","ts":0.0,"seq":0,"msg":"hi"}|} ]);
  expect_error "seq gap"
    (write [ manifest; {|{"ev":"log","ts":0.0,"seq":5,"msg":"hi"}|} ]);
  expect_error "unknown event type"
    (write [ manifest; {|{"ev":"mystery","ts":0.0,"seq":1}|} ]);
  expect_error "missing required field"
    (write
       [ manifest; {|{"ev":"span_end","ts":0.0,"seq":1,"id":1,"name":"x"}|} ]);
  expect_error "wrong field type"
    (write [ manifest; {|{"ev":"log","ts":0.0,"seq":1,"msg":12}|} ]);
  match write [ manifest; {|{"ev":"log","ts":0.1,"seq":1,"msg":"hi"}|} ] with
  | Ok events -> check Alcotest.int "valid file parses" 2 (List.length events)
  | Error e -> Alcotest.failf "valid file rejected: %s" e

let test_ticker_renders_eta () =
  let lines = ref [] in
  let tick =
    Obs.Span.ticker
      ~print:(fun l -> lines := l :: !lines)
      ~every:2 ~total:4 "test-ticks"
  in
  tick "a";
  tick "b";
  tick "c";
  tick "d";
  match List.rev !lines with
  | [ first; second ] ->
    let has_prefix p s =
      String.length s >= String.length p && String.sub s 0 (String.length p) = p
    in
    check Alcotest.bool "halfway line" true (has_prefix "test-ticks 2/4" first);
    check Alcotest.bool "final line" true (has_prefix "test-ticks 4/4" second);
    check Alcotest.bool "detail carried" true
      (String.length second >= 1
      && String.sub second (String.length second - 1) 1 = "d")
  | other -> Alcotest.failf "expected 2 lines every=2, got %d" (List.length other)

(* ---- Bit-identity: tracing must not change results --------------------- *)

let micro_scale =
  {
    Ml_model.Dataset.n_uarchs = 2;
    n_opts = 6;
    seed = 31;
    space = Ml_model.Features.Base;
    good_fraction = 0.2;
  }

let test_tracing_preserves_golden_numbers () =
  (* The acceptance bar for the whole layer: a traced run at Debug
     verbosity produces bit-identical datasets and cross-validation
     outcomes to an untraced run. *)
  let quiet =
    with_pool 4 (fun pool ->
        let d = Ml_model.Dataset.generate ~pool micro_scale in
        (d, Ml_model.Crossval.run ~pool d))
  in
  let path = Filename.temp_file "test_obs_identity" ".jsonl" in
  let traced =
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.set_level Obs.Trace.Info;
        try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Obs.Trace.start path;
        Obs.Trace.set_level Obs.Trace.Debug;
        Fun.protect ~finally:Obs.Trace.stop (fun () ->
            with_pool 4 (fun pool ->
                let d = Ml_model.Dataset.generate ~pool micro_scale in
                (d, Ml_model.Crossval.run ~pool d))))
  in
  let (d0, o0) = quiet and (d1, o1) = traced in
  check Alcotest.bool "pairs bit-identical" true
    (d0.Ml_model.Dataset.pairs = d1.Ml_model.Dataset.pairs);
  check Alcotest.bool "settings identical" true
    (d0.Ml_model.Dataset.settings = d1.Ml_model.Dataset.settings);
  check Alcotest.bool "outcomes bit-identical" true (o0 = o1)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "parse forms" `Quick test_json_parse_forms;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter atomic under pool" `Quick
            test_counter_atomic_under_pool;
          Alcotest.test_case "kind mismatch" `Quick test_metrics_kind_mismatch;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span failure" `Quick test_span_failure_recorded;
          Alcotest.test_case "pool parentage" `Quick
            test_pool_events_keep_parent;
          Alcotest.test_case "validation negatives" `Quick
            test_validate_rejects_malformed;
          Alcotest.test_case "ticker eta" `Quick test_ticker_renders_eta;
        ] );
      ( "identity",
        [
          Alcotest.test_case "tracing preserves golden numbers" `Slow
            test_tracing_preserves_golden_numbers;
        ] );
    ]
