(* Tests for the machine-learning model: distribution fitting (eq. 5),
   mixtures (eq. 6), mode (eq. 1), KNN prediction, the Markov variant,
   features and a tiny end-to-end cross-validation. *)

module F = Passes.Flags

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

let setting_with pairs =
  let s = Array.copy F.o3 in
  List.iter (fun (name, v) -> s.(F.index_of_name name) <- v) pairs;
  s

(* ---- Distribution (IID multinomial) ----------------------------------- *)

let test_fit_is_frequency_counting () =
  (* eq. 5: theta is the frequency of each value among the good set. *)
  let l = F.index_of_name "funroll_loops" in
  let good =
    [|
      setting_with [ ("funroll_loops", 1) ];
      setting_with [ ("funroll_loops", 1) ];
      setting_with [ ("funroll_loops", 1) ];
      setting_with [ ("funroll_loops", 0) ];
    |]
  in
  let g = Ml_model.Distribution.fit good in
  checkf "p(on) = 3/4" 0.75 g.(l).(1);
  checkf "p(off) = 1/4" 0.25 g.(l).(0)

let test_fit_rows_normalised () =
  let rng = Prelude.Rng.create 3 in
  let good = Array.init 10 (fun _ -> F.random rng) in
  let g = Ml_model.Distribution.fit good in
  Array.iter
    (fun row ->
      let z = Array.fold_left ( +. ) 0.0 row in
      if Float.abs (z -. 1.0) > 1e-9 then Alcotest.failf "row sums to %f" z)
    g

let test_mode_picks_argmax () =
  let good =
    [|
      setting_with [ ("funroll_loops", 1); ("fgcse", 0) ];
      setting_with [ ("funroll_loops", 1); ("fgcse", 0) ];
      setting_with [ ("funroll_loops", 0); ("fgcse", 0) ];
    |]
  in
  let m = Ml_model.Distribution.mode (Ml_model.Distribution.fit good) in
  check Alcotest.int "unroll on" 1 m.(F.index_of_name "funroll_loops");
  check Alcotest.int "gcse off" 0 m.(F.index_of_name "fgcse")

let test_mix_weights () =
  let a = Ml_model.Distribution.fit [| setting_with [ ("fgcse", 1) ] |] in
  let b = Ml_model.Distribution.fit [| setting_with [ ("fgcse", 0) ] |] in
  let l = F.index_of_name "fgcse" in
  let m = Ml_model.Distribution.mix [ (3.0, a); (1.0, b) ] in
  checkf "weighted 3:1" 0.75 m.(l).(1);
  (* Mixing preserves normalisation. *)
  Array.iter
    (fun row ->
      let z = Array.fold_left ( +. ) 0.0 row in
      if Float.abs (z -. 1.0) > 1e-9 then Alcotest.failf "row sums to %f" z)
    m

let test_mix_rejects_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Distribution.mix: empty mixture") (fun () ->
      ignore (Ml_model.Distribution.mix []))

let test_log_likelihood_orders_settings () =
  let good = Array.make 5 (setting_with [ ("funroll_loops", 1) ]) in
  let g = Ml_model.Distribution.fit ~alpha:0.1 good in
  let yes = Ml_model.Distribution.log_likelihood g (setting_with [ ("funroll_loops", 1) ]) in
  let no = Ml_model.Distribution.log_likelihood g (setting_with [ ("funroll_loops", 0) ]) in
  check Alcotest.bool "good setting more likely" true (yes > no)

let test_sample_respects_support () =
  let good = Array.make 4 (setting_with []) in
  let g = Ml_model.Distribution.fit good in
  let rng = Prelude.Rng.create 5 in
  for _ = 1 to 20 do
    let s = Ml_model.Distribution.sample rng g in
    (* Zero-probability values can never be drawn. *)
    check Alcotest.bool "drawn from support" true (s = F.o3)
  done

(* ---- Chain model ------------------------------------------------------ *)

let test_chain_mode_matches_training_consensus () =
  let good = Array.make 6 (setting_with [ ("funroll_loops", 1) ]) in
  let m = Ml_model.Chain_model.fit good in
  let mode = Ml_model.Chain_model.mode m in
  check Alcotest.int "viterbi recovers the consensus" 1
    mode.(F.index_of_name "funroll_loops")

let test_chain_mix () =
  let a = Ml_model.Chain_model.fit [| setting_with [ ("fgcse", 1) ] |] in
  let b = Ml_model.Chain_model.fit [| setting_with [ ("fgcse", 0) ] |] in
  let m = Ml_model.Chain_model.mix [ (1.0, a); (1.0, b) ] in
  let mode = Ml_model.Chain_model.mode m in
  F.validate mode

(* ---- Features ---------------------------------------------------------- *)

let test_feature_dimensions () =
  check Alcotest.int "base" 19 (Ml_model.Features.dim Ml_model.Features.Base);
  check Alcotest.int "extended" 21
    (Ml_model.Features.dim Ml_model.Features.Extended);
  check Alcotest.int "names match" 19
    (Array.length (Ml_model.Features.names Ml_model.Features.Base))

let test_normaliser_roundtrip () =
  let rows = [| [| 1.0; 5.0 |]; [| 3.0; 9.0 |] |] in
  let n = Ml_model.Features.fit_normaliser rows in
  let z = Ml_model.Features.normalise n [| 2.0; 7.0 |] in
  checkf "centred x" 0.0 z.(0);
  checkf "centred y" 0.0 z.(1)

(* ---- End-to-end on a tiny dataset -------------------------------------- *)

let tiny_dataset =
  lazy
    (Ml_model.Dataset.generate
       {
         Ml_model.Dataset.n_uarchs = 3;
         n_opts = 12;
         seed = 17;
         space = Ml_model.Features.Base;
         good_fraction = 0.1;
       })

let test_dataset_shape () =
  let d = Lazy.force tiny_dataset in
  check Alcotest.int "pairs" (35 * 3) (Array.length d.Ml_model.Dataset.pairs);
  Array.iter
    (fun (p : Ml_model.Dataset.pair) ->
      check Alcotest.int "times per pair" 12
        (Array.length p.Ml_model.Dataset.times);
      check Alcotest.bool "best is fastest" true
        (Array.for_all
           (fun t -> t >= p.Ml_model.Dataset.best_seconds)
           p.Ml_model.Dataset.times);
      check Alcotest.bool "o3 positive" true (p.Ml_model.Dataset.o3_seconds > 0.0))
    d.Ml_model.Dataset.pairs

let test_good_set_selection () =
  let times = [| 5.0; 1.0; 3.0; 2.0; 4.0; 6.0; 7.0; 8.0; 9.0; 10.0 |] in
  let good = Ml_model.Dataset.good_set ~good_fraction:0.2 times in
  check Alcotest.(array int) "two best indices" [| 1; 3 |] good;
  (* At least one setting survives even with a tiny fraction. *)
  check Alcotest.int "never empty" 1
    (Array.length (Ml_model.Dataset.good_set ~good_fraction:0.001 times))

let test_model_prediction_valid () =
  let d = Lazy.force tiny_dataset in
  let model = Ml_model.Model.train d in
  Array.iter
    (fun (p : Ml_model.Dataset.pair) ->
      F.validate (Ml_model.Model.predict model p.Ml_model.Dataset.features_raw))
    d.Ml_model.Dataset.pairs

let test_model_k1_returns_neighbour_mode () =
  let d = Lazy.force tiny_dataset in
  let model = Ml_model.Model.train ~k:1 d in
  (* Predicting at a training point with K=1 returns that point's own
     distribution mode. *)
  let p = d.Ml_model.Dataset.pairs.(0) in
  let predicted = Ml_model.Model.predict model p.Ml_model.Dataset.features_raw in
  check
    Alcotest.(array int)
    "self nearest neighbour"
    (Ml_model.Distribution.mode p.Ml_model.Dataset.distribution)
    predicted

let test_crossval_excludes_test_pair () =
  let d = Lazy.force tiny_dataset in
  let outcomes = Ml_model.Crossval.run d in
  check Alcotest.int "one outcome per pair" (35 * 3) (Array.length outcomes);
  Array.iter
    (fun (o : Ml_model.Crossval.outcome) ->
      check Alcotest.bool "positive seconds" true (o.predicted_seconds > 0.0);
      F.validate o.predicted)
    outcomes

let test_fraction_of_best_bounds () =
  let d = Lazy.force tiny_dataset in
  let outcomes = Ml_model.Crossval.run d in
  let f = Ml_model.Crossval.fraction_of_best outcomes in
  check Alcotest.bool "fraction sane" true (f > -1.0 && f <= 1.5)

let test_mutual_info_nonnegative () =
  let d = Lazy.force tiny_dataset in
  let mi = Ml_model.Mutual_info.pass_impact d ~prog:0 in
  Array.iter
    (fun v ->
      if v < 0.0 || v > 1.0 then Alcotest.failf "normalised MI out of range: %f" v)
    mi;
  let rel = Ml_model.Mutual_info.feature_pass_relation d in
  check Alcotest.int "one row per dimension" F.n_dims (Array.length rel);
  Array.iter
    (Array.iter (fun v ->
         if v < 0.0 || v > 1.0 then Alcotest.failf "MI out of range: %f" v))
    rel

let test_evaluate_caches_settings () =
  let d = Lazy.force tiny_dataset in
  let t1 = Ml_model.Dataset.evaluate d ~prog:0 ~uarch:0 F.o3 in
  let t2 = Ml_model.Dataset.evaluate d ~prog:0 ~uarch:0 F.o3 in
  checkf "cached evaluation deterministic" t1 t2

(* ---- Parallel engine: trace-once/model-many over a domain pool -------- *)

let with_pool jobs f =
  let pool = Prelude.Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Prelude.Pool.shutdown pool) (fun () -> f pool)

let tiny_scale =
  {
    Ml_model.Dataset.n_uarchs = 3;
    n_opts = 10;
    seed = 23;
    space = Ml_model.Features.Base;
    good_fraction = 0.1;
  }

let check_pairs_identical (a : Ml_model.Dataset.pair) (b : Ml_model.Dataset.pair) =
  check Alcotest.int "prog" a.prog_index b.prog_index;
  check Alcotest.int "uarch" a.uarch_index b.uarch_index;
  check Alcotest.bool "features bit-identical" true
    (a.features_raw = b.features_raw);
  check Alcotest.bool "o3 seconds bit-identical" true
    (a.o3_seconds = b.o3_seconds);
  check Alcotest.bool "times bit-identical" true (a.times = b.times);
  check Alcotest.int "best" a.best b.best;
  check Alcotest.bool "good set identical" true (a.good = b.good);
  check Alcotest.bool "distribution bit-identical" true
    (a.distribution = b.distribution)

let test_dataset_identical_across_jobs () =
  with_pool 1 (fun p1 ->
      with_pool 4 (fun p4 ->
          let d1 = Ml_model.Dataset.generate ~pool:p1 tiny_scale in
          let d4 = Ml_model.Dataset.generate ~pool:p4 tiny_scale in
          check Alcotest.bool "settings identical" true
            (d1.Ml_model.Dataset.settings = d4.Ml_model.Dataset.settings);
          check Alcotest.int "pair count"
            (Array.length d1.Ml_model.Dataset.pairs)
            (Array.length d4.Ml_model.Dataset.pairs);
          Array.iteri
            (fun i a -> check_pairs_identical a d4.Ml_model.Dataset.pairs.(i))
            d1.Ml_model.Dataset.pairs))

let test_crossval_identical_across_jobs () =
  let d = Lazy.force tiny_dataset in
  let o1 = with_pool 1 (fun p -> Ml_model.Crossval.run ~pool:p d) in
  let o4 = with_pool 4 (fun p -> Ml_model.Crossval.run ~pool:p d) in
  check Alcotest.int "outcome count" (Array.length o1) (Array.length o4);
  Array.iteri
    (fun i (a : Ml_model.Crossval.outcome) ->
      let b = o4.(i) in
      check Alcotest.int "prog" a.prog b.prog;
      check Alcotest.int "uarch" a.uarch b.uarch;
      check Alcotest.bool "predicted setting identical" true
        (a.predicted = b.predicted);
      check Alcotest.bool "seconds bit-identical" true
        (a.predicted_seconds = b.predicted_seconds))
    o1

let test_run_for_concurrent_stress () =
  (* Hammer the mutex-guarded profile cache from four domains with
     overlapping (prog, setting) keys and compare against a sequential
     reference evaluated on a fresh dataset. *)
  let d = Ml_model.Dataset.generate tiny_scale in
  let rng = Prelude.Rng.create 99 in
  let extra = Array.init 6 (fun _ -> F.random rng) in
  let task i =
    let setting = extra.(i mod Array.length extra) in
    let prog = i mod Ml_model.Dataset.n_programs d in
    Ml_model.Dataset.evaluate d ~prog ~uarch:(i mod 3) setting
  in
  let parallel = with_pool 4 (fun p -> Prelude.Pool.init p 120 task) in
  let reference =
    let fresh = Ml_model.Dataset.generate tiny_scale in
    Array.init 120 (fun i ->
        let setting = extra.(i mod Array.length extra) in
        let prog = i mod Ml_model.Dataset.n_programs fresh in
        Ml_model.Dataset.evaluate fresh ~prog ~uarch:(i mod 3) setting)
  in
  check Alcotest.bool "concurrent cache bit-identical to sequential" true
    (parallel = reference)

(* ---- Extensions: clustering and static features ----------------------- *)

let test_kmeans_separates_clusters () =
  let rng = Prelude.Rng.create 7 in
  let rows =
    Array.init 60 (fun i ->
        let base = if i < 30 then 0.0 else 100.0 in
        [| base +. Prelude.Rng.float rng 1.0; base +. Prelude.Rng.float rng 1.0 |])
  in
  let t = Ml_model.Clustering.kmeans ~rng ~k:2 rows in
  (* Both natural clusters must be pure. *)
  let first = t.Ml_model.Clustering.assignment.(0) in
  for i = 1 to 29 do
    check Alcotest.int "first cluster pure" first
      t.Ml_model.Clustering.assignment.(i)
  done;
  let second = t.Ml_model.Clustering.assignment.(30) in
  check Alcotest.bool "clusters differ" true (second <> first);
  for i = 31 to 59 do
    check Alcotest.int "second cluster pure" second
      t.Ml_model.Clustering.assignment.(i)
  done

let test_kmeans_medoids_are_members () =
  let rng = Prelude.Rng.create 8 in
  let rows = Array.init 40 (fun i -> [| float_of_int i; 0.0 |]) in
  let t = Ml_model.Clustering.kmeans ~rng ~k:4 rows in
  let m = Ml_model.Clustering.medoids t rows in
  check Alcotest.bool "some medoids" true (Array.length m > 0);
  Array.iter (fun i -> check Alcotest.bool "in range" true (i >= 0 && i < 40)) m

let test_clustering_selects_pairs () =
  let d = Lazy.force tiny_dataset in
  let rng = Prelude.Rng.create 9 in
  let subset = Ml_model.Clustering.select_training_pairs ~rng ~k:10 d in
  check Alcotest.bool "nonempty" true (Array.length subset > 0);
  check Alcotest.bool "not everything" true
    (Array.length subset <= 10);
  Array.iter
    (fun i ->
      check Alcotest.bool "valid index" true
        (i >= 0 && i < Array.length d.Ml_model.Dataset.pairs))
    subset

let test_static_features_shape () =
  let program =
    Passes.Driver.compile ~setting:F.o3
      (Workloads.Mibench.program_of (Workloads.Mibench.by_name "crc"))
  in
  let f = Ml_model.Static_features.of_program program in
  check Alcotest.int "dimension" Ml_model.Static_features.dim (Array.length f);
  check Alcotest.int "names match" Ml_model.Static_features.dim
    (Array.length Ml_model.Static_features.names);
  (* Fractions are fractions. *)
  for i = 1 to 6 do
    check Alcotest.bool "fraction in range" true (f.(i) >= 0.0 && f.(i) <= 1.0)
  done

let test_static_features_distinguish_programs () =
  let feat name =
    Ml_model.Static_features.of_program
      (Passes.Driver.compile ~setting:F.o3
         (Workloads.Mibench.program_of (Workloads.Mibench.by_name name)))
  in
  let a = feat "rijndael_e" and b = feat "qsort" in
  check Alcotest.bool "different programs, different features" true
    (Prelude.Vec.l2_distance a b > 0.5)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ml"
    [
      ( "distribution",
        [
          quick "fit counts frequencies (eq 5)" test_fit_is_frequency_counting;
          quick "rows normalised" test_fit_rows_normalised;
          quick "mode argmax (eq 1)" test_mode_picks_argmax;
          quick "mixture weights (eq 6)" test_mix_weights;
          quick "empty mixture rejected" test_mix_rejects_empty;
          quick "log likelihood" test_log_likelihood_orders_settings;
          quick "sampling support" test_sample_respects_support;
        ] );
      ( "chain",
        [
          quick "viterbi consensus" test_chain_mode_matches_training_consensus;
          quick "mixture" test_chain_mix;
        ] );
      ( "features",
        [
          quick "dimensions" test_feature_dimensions;
          quick "normaliser" test_normaliser_roundtrip;
        ] );
      ( "extensions",
        [
          quick "kmeans separates clusters" test_kmeans_separates_clusters;
          quick "medoids are members" test_kmeans_medoids_are_members;
          quick "clustering selects pairs" test_clustering_selects_pairs;
          quick "static feature shape" test_static_features_shape;
          quick "static features distinguish" test_static_features_distinguish_programs;
        ] );
      ( "dataset+model",
        [
          quick "dataset shape" test_dataset_shape;
          quick "good set selection" test_good_set_selection;
          quick "predictions valid" test_model_prediction_valid;
          quick "k=1 self neighbour" test_model_k1_returns_neighbour_mode;
          quick "crossval outcomes" test_crossval_excludes_test_pair;
          quick "fraction of best" test_fraction_of_best_bounds;
          quick "mutual information ranges" test_mutual_info_nonnegative;
          quick "evaluation cache" test_evaluate_caches_settings;
        ] );
      ( "parallel",
        [
          quick "dataset identical across jobs" test_dataset_identical_across_jobs;
          quick "crossval identical across jobs" test_crossval_identical_across_jobs;
          quick "run_for concurrent stress" test_run_for_concurrent_stress;
        ] );
    ]

