(* Tests for the machine-learning model: distribution fitting (eq. 5),
   mixtures (eq. 6), mode (eq. 1), KNN prediction, the Markov variant,
   features and a tiny end-to-end cross-validation. *)

module F = Passes.Flags

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

let setting_with pairs =
  let s = Array.copy F.o3 in
  List.iter (fun (name, v) -> s.(F.index_of_name name) <- v) pairs;
  s

(* ---- Distribution (IID multinomial) ----------------------------------- *)

let test_fit_is_frequency_counting () =
  (* eq. 5: theta is the frequency of each value among the good set. *)
  let l = F.index_of_name "funroll_loops" in
  let good =
    [|
      setting_with [ ("funroll_loops", 1) ];
      setting_with [ ("funroll_loops", 1) ];
      setting_with [ ("funroll_loops", 1) ];
      setting_with [ ("funroll_loops", 0) ];
    |]
  in
  let g = Ml_model.Distribution.fit good in
  checkf "p(on) = 3/4" 0.75 g.(l).(1);
  checkf "p(off) = 1/4" 0.25 g.(l).(0)

let test_fit_rows_normalised () =
  let rng = Prelude.Rng.create 3 in
  let good = Array.init 10 (fun _ -> F.random rng) in
  let g = Ml_model.Distribution.fit good in
  Array.iter
    (fun row ->
      let z = Array.fold_left ( +. ) 0.0 row in
      if Float.abs (z -. 1.0) > 1e-9 then Alcotest.failf "row sums to %f" z)
    g

let test_mode_picks_argmax () =
  let good =
    [|
      setting_with [ ("funroll_loops", 1); ("fgcse", 0) ];
      setting_with [ ("funroll_loops", 1); ("fgcse", 0) ];
      setting_with [ ("funroll_loops", 0); ("fgcse", 0) ];
    |]
  in
  let m = Ml_model.Distribution.mode (Ml_model.Distribution.fit good) in
  check Alcotest.int "unroll on" 1 m.(F.index_of_name "funroll_loops");
  check Alcotest.int "gcse off" 0 m.(F.index_of_name "fgcse")

let test_mix_weights () =
  let a = Ml_model.Distribution.fit [| setting_with [ ("fgcse", 1) ] |] in
  let b = Ml_model.Distribution.fit [| setting_with [ ("fgcse", 0) ] |] in
  let l = F.index_of_name "fgcse" in
  let m = Ml_model.Distribution.mix [ (3.0, a); (1.0, b) ] in
  checkf "weighted 3:1" 0.75 m.(l).(1);
  (* Mixing preserves normalisation. *)
  Array.iter
    (fun row ->
      let z = Array.fold_left ( +. ) 0.0 row in
      if Float.abs (z -. 1.0) > 1e-9 then Alcotest.failf "row sums to %f" z)
    m

let test_mix_rejects_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Distribution.mix: empty mixture") (fun () ->
      ignore (Ml_model.Distribution.mix []))

let test_log_likelihood_orders_settings () =
  let good = Array.make 5 (setting_with [ ("funroll_loops", 1) ]) in
  let g = Ml_model.Distribution.fit ~alpha:0.1 good in
  let yes = Ml_model.Distribution.log_likelihood g (setting_with [ ("funroll_loops", 1) ]) in
  let no = Ml_model.Distribution.log_likelihood g (setting_with [ ("funroll_loops", 0) ]) in
  check Alcotest.bool "good setting more likely" true (yes > no)

let test_sample_respects_support () =
  let good = Array.make 4 (setting_with []) in
  let g = Ml_model.Distribution.fit good in
  let rng = Prelude.Rng.create 5 in
  for _ = 1 to 20 do
    let s = Ml_model.Distribution.sample rng g in
    (* Zero-probability values can never be drawn. *)
    check Alcotest.bool "drawn from support" true (s = F.o3)
  done

(* ---- Chain model ------------------------------------------------------ *)

let test_chain_mode_matches_training_consensus () =
  let good = Array.make 6 (setting_with [ ("funroll_loops", 1) ]) in
  let m = Ml_model.Chain_model.fit good in
  let mode = Ml_model.Chain_model.mode m in
  check Alcotest.int "viterbi recovers the consensus" 1
    mode.(F.index_of_name "funroll_loops")

let test_chain_mix () =
  let a = Ml_model.Chain_model.fit [| setting_with [ ("fgcse", 1) ] |] in
  let b = Ml_model.Chain_model.fit [| setting_with [ ("fgcse", 0) ] |] in
  let m = Ml_model.Chain_model.mix [ (1.0, a); (1.0, b) ] in
  let mode = Ml_model.Chain_model.mode m in
  F.validate mode

(* ---- Features ---------------------------------------------------------- *)

let test_feature_dimensions () =
  check Alcotest.int "base" 19 (Ml_model.Features.dim Ml_model.Features.Base);
  check Alcotest.int "extended" 21
    (Ml_model.Features.dim Ml_model.Features.Extended);
  check Alcotest.int "names match" 19
    (Array.length (Ml_model.Features.names Ml_model.Features.Base))

let test_normaliser_roundtrip () =
  let rows = [| [| 1.0; 5.0 |]; [| 3.0; 9.0 |] |] in
  let n = Ml_model.Features.fit_normaliser rows in
  let z = Ml_model.Features.normalise n [| 2.0; 7.0 |] in
  checkf "centred x" 0.0 z.(0);
  checkf "centred y" 0.0 z.(1)

(* ---- End-to-end on a tiny dataset -------------------------------------- *)

let tiny_dataset =
  lazy
    (Ml_model.Dataset.generate
       {
         Ml_model.Dataset.n_uarchs = 3;
         n_opts = 12;
         seed = 17;
         space = Ml_model.Features.Base;
         good_fraction = 0.1;
       })

let test_dataset_shape () =
  let d = Lazy.force tiny_dataset in
  check Alcotest.int "pairs" (35 * 3) (Array.length d.Ml_model.Dataset.pairs);
  Array.iter
    (fun (p : Ml_model.Dataset.pair) ->
      check Alcotest.int "times per pair" 12
        (Array.length p.Ml_model.Dataset.times);
      check Alcotest.bool "best is fastest" true
        (Array.for_all
           (fun t -> t >= p.Ml_model.Dataset.best_seconds)
           p.Ml_model.Dataset.times);
      check Alcotest.bool "o3 positive" true (p.Ml_model.Dataset.o3_seconds > 0.0))
    d.Ml_model.Dataset.pairs

let test_good_set_selection () =
  let times = [| 5.0; 1.0; 3.0; 2.0; 4.0; 6.0; 7.0; 8.0; 9.0; 10.0 |] in
  let good = Ml_model.Dataset.good_set ~good_fraction:0.2 times in
  check Alcotest.(array int) "two best indices" [| 1; 3 |] good;
  (* At least one setting survives even with a tiny fraction. *)
  check Alcotest.int "never empty" 1
    (Array.length (Ml_model.Dataset.good_set ~good_fraction:0.001 times))

let test_model_prediction_valid () =
  let d = Lazy.force tiny_dataset in
  let model = Ml_model.Model.train d in
  Array.iter
    (fun (p : Ml_model.Dataset.pair) ->
      F.validate (Ml_model.Model.predict model p.Ml_model.Dataset.features_raw))
    d.Ml_model.Dataset.pairs

let test_model_k1_returns_neighbour_mode () =
  let d = Lazy.force tiny_dataset in
  let model = Ml_model.Model.train ~k:1 d in
  (* Predicting at a training point with K=1 returns that point's own
     distribution mode. *)
  let p = d.Ml_model.Dataset.pairs.(0) in
  let predicted = Ml_model.Model.predict model p.Ml_model.Dataset.features_raw in
  check
    Alcotest.(array int)
    "self nearest neighbour"
    (Ml_model.Distribution.mode p.Ml_model.Dataset.distribution)
    predicted

let test_crossval_excludes_test_pair () =
  let d = Lazy.force tiny_dataset in
  let outcomes = Ml_model.Crossval.run d in
  check Alcotest.int "one outcome per pair" (35 * 3) (Array.length outcomes);
  Array.iter
    (fun (o : Ml_model.Crossval.outcome) ->
      check Alcotest.bool "positive seconds" true (o.predicted_seconds > 0.0);
      F.validate o.predicted)
    outcomes

let test_fraction_of_best_bounds () =
  let d = Lazy.force tiny_dataset in
  let outcomes = Ml_model.Crossval.run d in
  let f = Ml_model.Crossval.fraction_of_best outcomes in
  check Alcotest.bool "fraction sane" true (f > -1.0 && f <= 1.5)

let test_mutual_info_nonnegative () =
  let d = Lazy.force tiny_dataset in
  let mi = Ml_model.Mutual_info.pass_impact d ~prog:0 in
  Array.iter
    (fun v ->
      if v < 0.0 || v > 1.0 then Alcotest.failf "normalised MI out of range: %f" v)
    mi;
  let rel = Ml_model.Mutual_info.feature_pass_relation d in
  check Alcotest.int "one row per dimension" F.n_dims (Array.length rel);
  Array.iter
    (Array.iter (fun v ->
         if v < 0.0 || v > 1.0 then Alcotest.failf "MI out of range: %f" v))
    rel

let test_evaluate_caches_settings () =
  let d = Lazy.force tiny_dataset in
  let t1 = Ml_model.Dataset.evaluate d ~prog:0 ~uarch:0 F.o3 in
  let t2 = Ml_model.Dataset.evaluate d ~prog:0 ~uarch:0 F.o3 in
  checkf "cached evaluation deterministic" t1 t2

(* ---- Parallel engine: trace-once/model-many over a domain pool -------- *)

let with_pool jobs f =
  let pool = Prelude.Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Prelude.Pool.shutdown pool) (fun () -> f pool)

let tiny_scale =
  {
    Ml_model.Dataset.n_uarchs = 3;
    n_opts = 10;
    seed = 23;
    space = Ml_model.Features.Base;
    good_fraction = 0.1;
  }

let check_pairs_identical (a : Ml_model.Dataset.pair) (b : Ml_model.Dataset.pair) =
  check Alcotest.int "prog" a.prog_index b.prog_index;
  check Alcotest.int "uarch" a.uarch_index b.uarch_index;
  check Alcotest.bool "features bit-identical" true
    (a.features_raw = b.features_raw);
  check Alcotest.bool "o3 seconds bit-identical" true
    (a.o3_seconds = b.o3_seconds);
  check Alcotest.bool "times bit-identical" true (a.times = b.times);
  check Alcotest.int "best" a.best b.best;
  check Alcotest.bool "good set identical" true (a.good = b.good);
  check Alcotest.bool "distribution bit-identical" true
    (a.distribution = b.distribution)

let test_dataset_identical_across_jobs () =
  with_pool 1 (fun p1 ->
      with_pool 4 (fun p4 ->
          let d1 = Ml_model.Dataset.generate ~pool:p1 tiny_scale in
          let d4 = Ml_model.Dataset.generate ~pool:p4 tiny_scale in
          check Alcotest.bool "settings identical" true
            (d1.Ml_model.Dataset.settings = d4.Ml_model.Dataset.settings);
          check Alcotest.int "pair count"
            (Array.length d1.Ml_model.Dataset.pairs)
            (Array.length d4.Ml_model.Dataset.pairs);
          Array.iteri
            (fun i a -> check_pairs_identical a d4.Ml_model.Dataset.pairs.(i))
            d1.Ml_model.Dataset.pairs))

let test_crossval_identical_across_jobs () =
  let d = Lazy.force tiny_dataset in
  let o1 = with_pool 1 (fun p -> Ml_model.Crossval.run ~pool:p d) in
  let o4 = with_pool 4 (fun p -> Ml_model.Crossval.run ~pool:p d) in
  check Alcotest.int "outcome count" (Array.length o1) (Array.length o4);
  Array.iteri
    (fun i (a : Ml_model.Crossval.outcome) ->
      let b = o4.(i) in
      check Alcotest.int "prog" a.prog b.prog;
      check Alcotest.int "uarch" a.uarch b.uarch;
      check Alcotest.bool "predicted setting identical" true
        (a.predicted = b.predicted);
      check Alcotest.bool "seconds bit-identical" true
        (a.predicted_seconds = b.predicted_seconds))
    o1

let test_run_for_concurrent_stress () =
  (* Hammer the mutex-guarded profile cache from four domains with
     overlapping (prog, setting) keys and compare against a sequential
     reference evaluated on a fresh dataset. *)
  let d = Ml_model.Dataset.generate tiny_scale in
  let rng = Prelude.Rng.create 99 in
  let extra = Array.init 6 (fun _ -> F.random rng) in
  let task i =
    let setting = extra.(i mod Array.length extra) in
    let prog = i mod Ml_model.Dataset.n_programs d in
    Ml_model.Dataset.evaluate d ~prog ~uarch:(i mod 3) setting
  in
  let parallel = with_pool 4 (fun p -> Prelude.Pool.init p 120 task) in
  let reference =
    let fresh = Ml_model.Dataset.generate tiny_scale in
    Array.init 120 (fun i ->
        let setting = extra.(i mod Array.length extra) in
        let prog = i mod Ml_model.Dataset.n_programs fresh in
        Ml_model.Dataset.evaluate fresh ~prog ~uarch:(i mod 3) setting)
  in
  check Alcotest.bool "concurrent cache bit-identical to sequential" true
    (parallel = reference)

(* ---- Extensions: clustering and static features ----------------------- *)

let test_kmeans_separates_clusters () =
  let rng = Prelude.Rng.create 7 in
  let rows =
    Array.init 60 (fun i ->
        let base = if i < 30 then 0.0 else 100.0 in
        [| base +. Prelude.Rng.float rng 1.0; base +. Prelude.Rng.float rng 1.0 |])
  in
  let t = Ml_model.Clustering.kmeans ~rng ~k:2 rows in
  (* Both natural clusters must be pure. *)
  let first = t.Ml_model.Clustering.assignment.(0) in
  for i = 1 to 29 do
    check Alcotest.int "first cluster pure" first
      t.Ml_model.Clustering.assignment.(i)
  done;
  let second = t.Ml_model.Clustering.assignment.(30) in
  check Alcotest.bool "clusters differ" true (second <> first);
  for i = 31 to 59 do
    check Alcotest.int "second cluster pure" second
      t.Ml_model.Clustering.assignment.(i)
  done

let test_kmeans_medoids_are_members () =
  let rng = Prelude.Rng.create 8 in
  let rows = Array.init 40 (fun i -> [| float_of_int i; 0.0 |]) in
  let t = Ml_model.Clustering.kmeans ~rng ~k:4 rows in
  let m = Ml_model.Clustering.medoids t rows in
  check Alcotest.bool "some medoids" true (Array.length m > 0);
  Array.iter (fun i -> check Alcotest.bool "in range" true (i >= 0 && i < 40)) m

let test_clustering_selects_pairs () =
  let d = Lazy.force tiny_dataset in
  let rng = Prelude.Rng.create 9 in
  let subset = Ml_model.Clustering.select_training_pairs ~rng ~k:10 d in
  check Alcotest.bool "nonempty" true (Array.length subset > 0);
  check Alcotest.bool "not everything" true
    (Array.length subset <= 10);
  Array.iter
    (fun i ->
      check Alcotest.bool "valid index" true
        (i >= 0 && i < Array.length d.Ml_model.Dataset.pairs))
    subset

let test_static_features_shape () =
  let program =
    Passes.Driver.compile ~setting:F.o3
      (Workloads.Mibench.program_of (Workloads.Mibench.by_name "crc"))
  in
  let f = Ml_model.Static_features.of_program program in
  check Alcotest.int "dimension" Ml_model.Static_features.dim (Array.length f);
  check Alcotest.int "names match" Ml_model.Static_features.dim
    (Array.length Ml_model.Static_features.names);
  (* Fractions are fractions. *)
  for i = 1 to 6 do
    check Alcotest.bool "fraction in range" true (f.(i) >= 0.0 && f.(i) <= 1.0)
  done

let test_static_features_distinguish_programs () =
  let feat name =
    Ml_model.Static_features.of_program
      (Passes.Driver.compile ~setting:F.o3
         (Workloads.Mibench.program_of (Workloads.Mibench.by_name name)))
  in
  let a = feat "rijndael_e" and b = feat "qsort" in
  check Alcotest.bool "different programs, different features" true
    (Prelude.Vec.l2_distance a b > 0.5)

(* ---- Prediction core: comparator regression, VP-tree vs scan ---------- *)

module P = Ml_model.Predict
module V = Ml_model.Vptree

(* The pre-fix neighbour selection, verbatim: polymorphic [compare] on
   (distance, index) tuples.  On finite data the explicit
   Float.compare-then-index comparator must reproduce it bit-for-bit —
   the regression the golden datasets below pin down. *)
let reference_predict ~k ~beta (points : float array array) distributions xn =
  let n = Array.length points in
  let dist =
    Array.init n (fun i -> (Ml_model.Features.distance points.(i) xn, i))
  in
  Array.sort compare dist;
  let k = min k n in
  let sel = Array.sub dist 0 k in
  let dmin = fst sel.(0) in
  let ns =
    Array.map
      (fun (d, i) ->
        { P.index = i; distance = d; weight = exp (-.beta *. (d -. dmin)) })
      sel
  in
  let distribution =
    Ml_model.Distribution.mix
      (Array.to_list
         (Array.map (fun nb -> (nb.P.weight, distributions.(nb.P.index))) ns))
  in
  (ns, distribution, Ml_model.Distribution.mode distribution)

let golden_scale seed =
  {
    Ml_model.Dataset.n_uarchs = 2;
    n_opts = 8;
    seed;
    space = Ml_model.Features.Base;
    good_fraction = 0.1;
  }

let golden42 = lazy (Ml_model.Dataset.generate (golden_scale 42))
let golden43 = lazy (Ml_model.Dataset.generate (golden_scale 43))

let check_same_result ~msg (got : P.result) ns distribution setting =
  if got.P.neighbours <> ns then Alcotest.failf "%s: neighbours differ" msg;
  if got.P.distribution <> distribution then
    Alcotest.failf "%s: distribution differs" msg;
  if got.P.setting <> setting then Alcotest.failf "%s: setting differs" msg

let test_comparator_matches_historical_sort () =
  List.iter
    (fun (seed, dataset) ->
      let d = Lazy.force dataset in
      let model = Ml_model.Model.train d in
      let r = Ml_model.Model.export model in
      let points = r.Ml_model.Model.r_features in
      let distributions = r.Ml_model.Model.r_distributions in
      let k = Ml_model.Model.k model and beta = Ml_model.Model.beta model in
      Array.iter
        (fun (p : Ml_model.Dataset.pair) ->
          let xn =
            Ml_model.Features.normalise r.Ml_model.Model.r_normaliser
              p.Ml_model.Dataset.features_raw
          in
          let ns, g, mode =
            reference_predict ~k ~beta points distributions xn
          in
          check_same_result
            ~msg:(Printf.sprintf "seed %d, scan" seed)
            (P.run ~k ~beta ~points ~distributions xn)
            ns g mode;
          (* The golden answers hold straight through both engines and
             the model entry point. *)
          List.iter
            (fun engine ->
              check_same_result
                ~msg:
                  (Printf.sprintf "seed %d, %s" seed
                     (P.engine_to_string engine))
                (Ml_model.Model.predict_full ~engine model
                   p.Ml_model.Dataset.features_raw)
                ns g mode)
            [ P.Scan; P.Vptree ])
        d.Ml_model.Dataset.pairs)
    [ (42, golden42); (43, golden43) ]

(* Synthetic normalised-space rows with exact duplicates sprinkled in,
   so distance ties — where only the index tie-break separates
   candidates — actually occur. *)
let rows_with_duplicates rng ~n ~dim =
  let rows =
    Array.init n (fun _ ->
        Array.init dim (fun _ -> Prelude.Rng.float rng 2.0 -. 1.0))
  in
  for i = 0 to n - 1 do
    if i mod 17 = 16 then rows.(i) <- Array.copy rows.(i - 1)
  done;
  rows

let test_vptree_equals_scan_property () =
  let rng = Prelude.Rng.create 123 in
  let dim = Ml_model.Features.dim Ml_model.Features.Base in
  List.iter
    (fun n ->
      let rows = rows_with_duplicates rng ~n ~dim in
      let index = V.build rows in
      let queries =
        Array.init 50 (fun qi ->
            (* Every fifth query sits exactly on a training row: zero
               distance, maximal tie pressure. *)
            if qi mod 5 = 0 then Array.copy rows.(qi * 13 mod n)
            else Array.init dim (fun _ -> Prelude.Rng.float rng 2.0 -. 1.0))
      in
      List.iter
        (fun k ->
          Array.iteri
            (fun qi q ->
              let si, sd = V.scan_knn index ~k q in
              let ti, td = V.knn index ~k q in
              if si <> ti || sd <> td then
                Alcotest.failf
                  "n=%d k=%d query %d: vptree diverges from scan" n k qi)
            queries)
        [ 1; 2; 3; 7; 13; 40 ])
    [ 10; 64; 300 ]

(* Random per-row distributions with the real (dimension, cardinality)
   shape, so mixtures do real work. *)
let random_distribution rng =
  Array.map
    (fun row ->
      let r = Array.map (fun _ -> 0.1 +. Prelude.Rng.float rng 1.0) row in
      let s = Array.fold_left ( +. ) 0.0 r in
      Array.map (fun v -> v /. s) r)
    (Ml_model.Distribution.uniform ())

let test_predict_engines_bit_identical () =
  let rng = Prelude.Rng.create 321 in
  let dim = Ml_model.Features.dim Ml_model.Features.Base in
  let n = 120 in
  let rows = rows_with_duplicates rng ~n ~dim in
  let distributions = Array.init n (fun _ -> random_distribution rng) in
  let index = V.build rows in
  let queries =
    Array.init 25 (fun qi ->
        if qi mod 5 = 0 then Array.copy rows.(qi * 7 mod n)
        else Array.init dim (fun _ -> Prelude.Rng.float rng 2.0 -. 1.0))
  in
  List.iter
    (fun k ->
      List.iter
        (fun beta ->
          Array.iteri
            (fun qi q ->
              let want = P.run ~k ~beta ~points:rows ~distributions q in
              List.iter
                (fun engine ->
                  check_same_result
                    ~msg:
                      (Printf.sprintf "k=%d beta=%g query %d %s" k beta qi
                         (P.engine_to_string engine))
                    (P.run_indexed ~engine ~k ~beta ~index ~distributions q)
                    want.P.neighbours want.P.distribution want.P.setting)
                [ P.Scan; P.Vptree ])
            queries)
        [ 0.25; 1.0; 4.0 ])
    [ 1; 3; 7 ]

let test_run_batch_matches_singles () =
  let rng = Prelude.Rng.create 555 in
  let dim = Ml_model.Features.dim Ml_model.Features.Base in
  let n = 90 in
  let rows = rows_with_duplicates rng ~n ~dim in
  let distributions = Array.init n (fun _ -> random_distribution rng) in
  let index = V.build rows in
  let queries =
    Array.init 40 (fun qi ->
        if qi mod 4 = 0 then Array.copy rows.(qi mod n)
        else Array.init dim (fun _ -> Prelude.Rng.float rng 2.0 -. 1.0))
  in
  List.iter
    (fun engine ->
      let batch =
        P.run_batch ~engine ~k:7 ~beta:1.0 ~index ~distributions queries
      in
      check Alcotest.int "one result per query" (Array.length queries)
        (Array.length batch);
      Array.iteri
        (fun qi q ->
          let single =
            P.run_indexed ~engine ~k:7 ~beta:1.0 ~index ~distributions q
          in
          check_same_result
            ~msg:
              (Printf.sprintf "query %d %s" qi (P.engine_to_string engine))
            batch.(qi) single.P.neighbours single.P.distribution
            single.P.setting)
        queries)
    [ P.Scan; P.Vptree ]

let test_model_batch_matches_predict_full () =
  let d = Lazy.force tiny_dataset in
  let model = Ml_model.Model.train d in
  let xs =
    Array.map
      (fun (p : Ml_model.Dataset.pair) -> p.Ml_model.Dataset.features_raw)
      d.Ml_model.Dataset.pairs
  in
  let batch = Ml_model.Model.predict_batch model xs in
  Array.iteri
    (fun i x ->
      let single = Ml_model.Model.predict_full model x in
      check_same_result
        ~msg:(Printf.sprintf "pair %d" i)
        batch.(i) single.P.neighbours single.P.distribution single.P.setting)
    xs

let test_vptree_build_deterministic_and_reloadable () =
  let rng = Prelude.Rng.create 77 in
  let rows = rows_with_duplicates rng ~n:100 ~dim:5 in
  let a = V.build rows and b = V.build rows in
  check Alcotest.bool "two builds, one structure" true (V.root a = V.root b);
  (* of_root round-trips the frozen shape. *)
  (match V.of_root ~rows (V.root a) with
  | Error e -> Alcotest.failf "of_root rejected its own tree: %s" e
  | Ok c ->
    let q = rows.(3) in
    check Alcotest.bool "reloaded tree answers identically" true
      (V.knn a ~k:5 q = V.knn c ~k:5 q));
  (* Structural validation catches bad frozen trees. *)
  let reject ~msg root =
    match V.of_root ~rows root with
    | Ok _ -> Alcotest.failf "%s: accepted" msg
    | Error _ -> ()
  in
  reject ~msg:"missing rows" (V.Leaf [| 0 |]);
  reject ~msg:"duplicate row"
    (V.Leaf (Array.init 101 (fun i -> if i = 100 then 0 else i)));
  reject ~msg:"out of range" (V.Leaf (Array.init 100 (fun i -> i + 1)));
  reject ~msg:"non-finite radius"
    (V.Split
       {
         vp = 0;
         mu = Float.nan;
         inner = V.Leaf (Array.init 50 (fun i -> i + 1));
         outer = V.Leaf (Array.init 49 (fun i -> i + 51));
       })

let test_vptree_rejects_bad_input () =
  Alcotest.check_raises "empty matrix"
    (Invalid_argument "Vptree.build: empty matrix") (fun () ->
      ignore (V.build [||]));
  Alcotest.check_raises "ragged matrix"
    (Invalid_argument "Vptree.build: ragged matrix") (fun () ->
      ignore (V.build [| [| 1.0 |]; [| 1.0; 2.0 |] |]));
  let t = V.build [| [| 0.0 |]; [| 1.0 |] |] in
  Alcotest.check_raises "k < 1"
    (Invalid_argument "Vptree.knn: k must be >= 1 (got 0)") (fun () ->
      ignore (V.knn t ~k:0 [| 0.5 |]));
  Alcotest.check_raises "wrong query dimension"
    (Invalid_argument "Vptree.knn: query dimension 2, index dimension 1")
    (fun () -> ignore (V.knn t ~k:1 [| 0.5; 0.5 |]));
  (* k > n clamps to n rather than erroring. *)
  let idxs, _ = V.knn t ~k:10 [| 0.2 |] in
  check Alcotest.(array int) "k clamps to n" [| 0; 1 |] idxs

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ml"
    [
      ( "distribution",
        [
          quick "fit counts frequencies (eq 5)" test_fit_is_frequency_counting;
          quick "rows normalised" test_fit_rows_normalised;
          quick "mode argmax (eq 1)" test_mode_picks_argmax;
          quick "mixture weights (eq 6)" test_mix_weights;
          quick "empty mixture rejected" test_mix_rejects_empty;
          quick "log likelihood" test_log_likelihood_orders_settings;
          quick "sampling support" test_sample_respects_support;
        ] );
      ( "chain",
        [
          quick "viterbi consensus" test_chain_mode_matches_training_consensus;
          quick "mixture" test_chain_mix;
        ] );
      ( "features",
        [
          quick "dimensions" test_feature_dimensions;
          quick "normaliser" test_normaliser_roundtrip;
        ] );
      ( "extensions",
        [
          quick "kmeans separates clusters" test_kmeans_separates_clusters;
          quick "medoids are members" test_kmeans_medoids_are_members;
          quick "clustering selects pairs" test_clustering_selects_pairs;
          quick "static feature shape" test_static_features_shape;
          quick "static features distinguish" test_static_features_distinguish_programs;
        ] );
      ( "dataset+model",
        [
          quick "dataset shape" test_dataset_shape;
          quick "good set selection" test_good_set_selection;
          quick "predictions valid" test_model_prediction_valid;
          quick "k=1 self neighbour" test_model_k1_returns_neighbour_mode;
          quick "crossval outcomes" test_crossval_excludes_test_pair;
          quick "fraction of best" test_fraction_of_best_bounds;
          quick "mutual information ranges" test_mutual_info_nonnegative;
          quick "evaluation cache" test_evaluate_caches_settings;
        ] );
      ( "parallel",
        [
          quick "dataset identical across jobs" test_dataset_identical_across_jobs;
          quick "crossval identical across jobs" test_crossval_identical_across_jobs;
          quick "run_for concurrent stress" test_run_for_concurrent_stress;
        ] );
      ( "predict-core",
        [
          Alcotest.test_case
            "explicit comparator matches historical sort (seeds 42/43)"
            `Slow test_comparator_matches_historical_sort;
          quick "vptree equals scan (property sweep)"
            test_vptree_equals_scan_property;
          quick "engines bit-identical across k and beta"
            test_predict_engines_bit_identical;
          quick "run_batch matches singles" test_run_batch_matches_singles;
          quick "model batch matches predict_full"
            test_model_batch_matches_predict_full;
          quick "vptree build deterministic and reloadable"
            test_vptree_build_deterministic_and_reloadable;
          quick "vptree rejects bad input" test_vptree_rejects_bad_input;
        ] );
    ]

