(* Tests for the model registry: the evidence ledger codec, the
   incremental trainer's bit-identity with cold training, publish /
   resolve / channel semantics, and gc's reachability rules.

   The central claim under test is the refit identity: folding fresh
   evidence into an existing version's sufficient statistics publishes
   a version byte-identical to a cold retrain on the union ledger —
   same content digest, same artifact bytes, one version id. *)

module J = Obs.Json

let check = Alcotest.check

(* Tiny but non-degenerate training scale (mirrors test_serve's). *)
let tiny_scale seed =
  {
    Ml_model.Dataset.n_uarchs = 2;
    n_opts = 8;
    seed;
    space = Ml_model.Features.Base;
    good_fraction = 0.1;
  }

let dataset42 = lazy (Ml_model.Dataset.generate (tiny_scale 42))
let dataset43 = lazy (Ml_model.Dataset.generate (tiny_scale 43))

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "portopt_regtest_%d_%s" (Unix.getpid ()) name)

let fresh_registry name = Registry.open_ ~dir:(tmp_path name)

let meta = [ ("suite", J.Str "registry-test") ]

let encode_of model =
  Serve.Artifact.encode
    { Serve.Artifact.model; space = Ml_model.Features.Base; meta }

let or_fail ~msg = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" msg e

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- evidence ledger --------------------------------------------------- *)

let test_evidence_roundtrip () =
  let d = Lazy.force dataset42 in
  let records = Registry.Evidence.of_dataset d in
  check Alcotest.int "one record per pair"
    (Array.length d.Ml_model.Dataset.pairs)
    (List.length records);
  let path = tmp_path "ledger.jsonl" in
  Registry.Evidence.write ~path records;
  let back = or_fail ~msg:"read" (Registry.Evidence.read ~path) in
  check Alcotest.bool "records survive the JSONL round trip" true
    (records = back);
  check Alcotest.string "digest is stable across the round trip"
    (Registry.Evidence.digest records)
    (Registry.Evidence.digest back);
  (match Registry.Evidence.space records with
  | Ok Ml_model.Features.Base -> ()
  | Ok Ml_model.Features.Extended -> Alcotest.fail "wrong inferred space"
  | Error e -> Alcotest.failf "space inference failed: %s" e);
  (* Per-record identity and provenance digests are well-formed. *)
  List.iter
    (fun (r : Registry.Evidence.record) ->
      if Array.length r.Registry.Evidence.good = 0 then
        Alcotest.fail "empty good set";
      if String.length r.Registry.Evidence.prog_digest = 0 then
        Alcotest.fail "empty program digest")
    records;
  (* A corrupted line is rejected with its position. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"prog\":\"x\"}\n";
  close_out oc;
  match Registry.Evidence.read ~path with
  | Ok _ -> Alcotest.fail "accepted a truncated record"
  | Error e ->
    let contains ~needle hay =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    check Alcotest.bool "error names the line" true
      (contains ~needle:(Printf.sprintf "line %d" (List.length records + 1)) e)

(* ---- refit bit-identity ------------------------------------------------ *)

let test_refit_matches_cold_training () =
  let d = Lazy.force dataset42 in
  let records = Registry.Evidence.of_dataset d in
  let cold = Ml_model.Model.train d in
  let refit =
    or_fail ~msg:"to_model"
      (Registry.Refit.to_model (Registry.Refit.of_records records))
  in
  (* Byte-identity through the artifact encoding: every float of the
     distributions, normaliser, feature rows and frozen index agrees
     bit for bit. *)
  let cold_header, cold_payload = encode_of cold in
  let refit_header, refit_payload = encode_of refit in
  check Alcotest.string "artifact payloads are byte-identical" cold_payload
    refit_payload;
  check Alcotest.string "headers (checksums) agree" cold_header refit_header

let test_incremental_fold_matches_union () =
  let e1 = Registry.Evidence.of_dataset (Lazy.force dataset42) in
  let e2 = Registry.Evidence.of_dataset (Lazy.force dataset43) in
  (* Incremental: fold e2 into a state already holding e1. *)
  let state = Registry.Refit.of_records e1 in
  Registry.Refit.fold state e2;
  let incremental = or_fail ~msg:"refit" (Registry.Refit.to_model state) in
  (* Cold: one fit of the concatenated ledger. *)
  let union = Registry.Refit.of_records (e1 @ e2) in
  let cold = or_fail ~msg:"cold" (Registry.Refit.to_model union) in
  check Alcotest.int "same pair count" (Registry.Refit.pairs union)
    (Registry.Refit.pairs state);
  check Alcotest.int "records accumulate"
    (List.length e1 + List.length e2)
    (Registry.Refit.records state);
  let _, p_inc = encode_of incremental in
  let _, p_cold = encode_of cold in
  check Alcotest.string "fold(of_records e1, e2) == of_records (e1 @ e2)"
    p_cold p_inc

(* ---- publish / resolve / channels -------------------------------------- *)

let test_publish_refit_same_version () =
  let e1 = Registry.Evidence.of_dataset (Lazy.force dataset42) in
  let e2 = Registry.Evidence.of_dataset (Lazy.force dataset43) in
  (* Registry A: cold v1, then incremental refit to v2. *)
  let ra = fresh_registry "pub_a" in
  let l1 =
    or_fail ~msg:"publish v1"
      (Registry.publish ~channel:"stable" ~created:0.0 ra e1)
  in
  check Alcotest.bool "v1 is a cold fit" true (l1.Registry.l_parent = None);
  let l2 =
    or_fail ~msg:"refit v2"
      (Registry.publish ~parent:"stable" ~channel:"candidate" ~created:1.0 ra
         e2)
  in
  check Alcotest.bool "v2 records its parent" true
    (l2.Registry.l_parent = Some l1.Registry.l_id);
  (* Registry B: one cold fit of the union ledger. *)
  let rb = fresh_registry "pub_b" in
  let l2' =
    or_fail ~msg:"cold union" (Registry.publish ~created:1.0 rb (e1 @ e2))
  in
  check Alcotest.string
    "refit and cold retrain content-address to the same version"
    l2'.Registry.l_id l2.Registry.l_id;
  check Alcotest.string "stored artifacts are byte-identical"
    (read_file (Registry.object_path rb l2'.Registry.l_id))
    (read_file (Registry.object_path ra l2.Registry.l_id));
  (* The stored ledger of the refit child is the union, append-only. *)
  let stored =
    or_fail ~msg:"evidence" (Registry.evidence ra l2.Registry.l_id)
  in
  check Alcotest.bool "child ledger = parent ledger ++ delta" true
    (stored = e1 @ e2);
  check Alcotest.string "lineage digest matches the union ledger"
    (Registry.Evidence.digest (e1 @ e2))
    l2.Registry.l_evidence_digest;
  (* Republishing identical content is a no-op that keeps the id. *)
  let l2'' =
    or_fail ~msg:"republish" (Registry.publish ~created:9.0 rb (e1 @ e2))
  in
  check Alcotest.string "republish dedupes" l2'.Registry.l_id
    l2''.Registry.l_id;
  check Alcotest.bool "first lineage record wins" true
    (l2''.Registry.l_created = l2'.Registry.l_created)

let test_resolve_and_channels () =
  let e1 = Registry.Evidence.of_dataset (Lazy.force dataset42) in
  let r = fresh_registry "resolve" in
  let l1 =
    or_fail ~msg:"publish"
      (Registry.publish ~channel:"stable" ~created:0.0 r e1)
  in
  let id = l1.Registry.l_id in
  (* latest always follows a publish; the named channel moved too. *)
  check Alcotest.(option string) "latest moved" (Some id)
    (Registry.channel r "latest");
  check Alcotest.(option string) "stable moved" (Some id)
    (Registry.channel r "stable");
  (* Channel name, exact id and unambiguous prefix all resolve. *)
  List.iter
    (fun ref_ ->
      check Alcotest.string
        (Printf.sprintf "resolve %S" ref_)
        id
        (or_fail ~msg:ref_ (Registry.resolve_id r ref_)))
    [ "stable"; "latest"; id; String.sub id 0 6 ];
  (* The loaded artifact is the stored model, checksum-verified. *)
  let rid, artifact = or_fail ~msg:"resolve" (Registry.resolve r "stable") in
  check Alcotest.string "resolve returns the id" id rid;
  check Alcotest.string "artifact content-addresses to its id" id
    (Serve.Artifact.version_id artifact);
  (* Failure modes: unknown ref, too-short prefix, dangling pointer. *)
  (match Registry.resolve_id r "feedbeeffeedbeef" with
  | Ok _ -> Alcotest.fail "resolved an unknown id"
  | Error _ -> ());
  (match Registry.resolve_id r (String.sub id 0 3) with
  | Ok _ -> Alcotest.fail "resolved a 3-char prefix"
  | Error _ -> ());
  (match Registry.set_channel r ~name:"stable" ~id:"feedbeeffeedbeef" with
  | Ok () -> Alcotest.fail "pointed a channel at a missing version"
  | Error _ -> ());
  (match Registry.set_channel r ~name:"../evil" ~id with
  | Ok () -> Alcotest.fail "accepted a path-traversal channel name"
  | Error _ -> ());
  (* Versions listing carries the lineage. *)
  let versions = or_fail ~msg:"versions" (Registry.versions r) in
  check Alcotest.int "one version" 1 (List.length versions);
  check Alcotest.string "listed id" id (List.hd versions).Registry.l_id

(* ---- gc reachability --------------------------------------------------- *)

let test_gc_respects_channels_and_lineage () =
  let e1 = Registry.Evidence.of_dataset (Lazy.force dataset42) in
  let e2 = Registry.Evidence.of_dataset (Lazy.force dataset43) in
  let r = fresh_registry "gc" in
  let v1 =
    (or_fail ~msg:"v1" (Registry.publish ~created:0.0 r e1)).Registry.l_id
  in
  let v2 =
    (or_fail ~msg:"v2"
       (Registry.publish ~parent:v1 ~created:1.0 r e2))
      .Registry.l_id
  in
  (* A third, unrelated version that nothing will point at. *)
  let e3 =
    List.filteri (fun i _ -> i mod 2 = 0) (e1 @ e2)
  in
  let v3 =
    (or_fail ~msg:"v3" (Registry.publish ~created:2.0 r e3)).Registry.l_id
  in
  (* Point every channel at v2: v1 stays reachable only through v2's
     lineage parent chain; v3 becomes garbage. *)
  or_fail ~msg:"stable" (Registry.set_channel r ~name:"stable" ~id:v2);
  or_fail ~msg:"latest" (Registry.set_channel r ~name:"latest" ~id:v2);
  (* Dry run reports without deleting. *)
  let deleted, kept = or_fail ~msg:"gc dry" (Registry.gc ~dry_run:true r) in
  check Alcotest.(list string) "dry run finds exactly the orphan" [ v3 ]
    deleted;
  check Alcotest.int "dry run keeps the chain" 2 kept;
  check Alcotest.bool "dry run deleted nothing" true
    (Sys.file_exists (Registry.object_path r v3));
  (* Real run: v3 goes, v1 survives via the lineage chain. *)
  let deleted, kept = or_fail ~msg:"gc" (Registry.gc r) in
  check Alcotest.(list string) "gc deletes exactly the orphan" [ v3 ] deleted;
  check Alcotest.int "gc keeps channel targets and their ancestry" 2 kept;
  check Alcotest.bool "orphan object removed" false
    (Sys.file_exists (Registry.object_path r v3));
  ignore (or_fail ~msg:"v1 resolves" (Registry.resolve r v1));
  ignore (or_fail ~msg:"v2 resolves" (Registry.resolve r v2));
  (* A dangling pointer aborts gc instead of risking live versions. *)
  let rd = fresh_registry "gc_dangling" in
  ignore (or_fail ~msg:"publish" (Registry.publish ~created:0.0 rd e1));
  let ch = Filename.concat (Filename.concat (Registry.dir rd) "channels") "stable" in
  let oc = open_out ch in
  output_string oc "feedbeeffeedbeef\n";
  close_out oc;
  match Registry.gc rd with
  | Ok _ -> Alcotest.fail "gc ran with a dangling channel pointer"
  | Error e ->
    check Alcotest.bool "error names the channel" true
      (String.length e > 0)

let () =
  Alcotest.run "registry"
    [
      ( "evidence",
        [ Alcotest.test_case "ledger round-trip and rejects" `Slow
            test_evidence_roundtrip ] );
      ( "refit",
        [
          Alcotest.test_case "refit == cold training, bit for bit" `Slow
            test_refit_matches_cold_training;
          Alcotest.test_case "incremental fold == union fit" `Slow
            test_incremental_fold_matches_union;
        ] );
      ( "publish",
        [
          Alcotest.test_case "refit publishes the cold retrain's version"
            `Slow test_publish_refit_same_version;
          Alcotest.test_case "resolve, channels, failure modes" `Slow
            test_resolve_and_channels;
        ] );
      ( "gc",
        [
          Alcotest.test_case "keeps channels and lineage chains" `Slow
            test_gc_respects_channels_and_lineage;
        ] );
    ]
