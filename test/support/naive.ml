(** Slow reference implementations used as oracles in property tests. *)

(** Exact stack distances by linear scan: distance of each access =
    number of distinct blocks since the previous access to the same block,
    or [-1] for a cold access.  O(n^2), for short traces only. *)
let stack_distances trace =
  let n = Array.length trace in
  Array.init n (fun t ->
      let b = trace.(t) in
      let rec find_prev i = if i < 0 then -1 else if trace.(i) = b then i else find_prev (i - 1) in
      let p = find_prev (t - 1) in
      if p < 0 then -1
      else begin
        let seen = Hashtbl.create 16 in
        for i = p + 1 to t - 1 do
          Hashtbl.replace seen trace.(i) ()
        done;
        Hashtbl.length seen
      end)

(** Exact fully-associative LRU miss count on a block trace. *)
let lru_misses ~capacity trace =
  let order = ref [] in
  let misses = ref 0 in
  Array.iter
    (fun b ->
      let rec remove = function
        | [] -> (false, [])
        | x :: rest ->
          if x = b then (true, rest)
          else begin
            let found, rest' = remove rest in
            (found, x :: rest')
          end
      in
      let found, rest = remove !order in
      if not found then incr misses;
      let rest =
        if List.length rest >= capacity then
          List.filteri (fun i _ -> i < capacity - 1) rest
        else rest
      in
      order := b :: rest)
    trace;
  !misses

(** Binomial tail by direct summation over the full support (float),
    oracle for {!Prelude.Reuse.binomial_tail_ge}. *)
let binomial_tail_ge ~n ~p ~k =
  let ln_choose n r =
    let rec lf x acc = if x <= 1 then acc else lf (x - 1) (acc +. log (float_of_int x)) in
    lf n 0.0 -. lf r 0.0 -. lf (n - r) 0.0
  in
  let acc = ref 0.0 in
  for j = k to n do
    acc :=
      !acc
      +. exp
           (ln_choose n j
           +. (float_of_int j *. log p)
           +. (float_of_int (n - j) *. log (1.0 -. p)))
  done;
  !acc
