(** Random well-formed program generator for property-based testing.

    Programs are built through {!Ir.Builder} by composing the workload
    kernel combinators with randomised parameters, so every generated
    program is valid by construction, terminates, and exercises loops,
    branches, calls, memory and the MAC/shifter units.  The central
    property tested against it: {e every pass pipeline preserves the
    checksum}. *)

open Ir.Types
module B = Ir.Builder
module K = Workloads.Kernels

(* One random kernel appended to the entry function; returns an
   accumulator register when it produces one. *)
let random_kernel rng fb ~arrays =
  let pick () = Prelude.Rng.choose rng arrays in
  let words_of (_, w) = w in
  let base_of (b, _) = b in
  let small_words a = min 64 (words_of a) in
  match Prelude.Rng.int rng 10 with
  | 0 ->
    let a = pick () in
    K.stream_map fb ~src:(base_of a) ~dst:(base_of (pick ()))
      ~words:(small_words a) ~stride:(1 + Prelude.Rng.int rng 2)
      ~work:(Prelude.Rng.int rng 4);
    None
  | 1 ->
    let a = pick () and b = pick () in
    Some (K.mac_dot fb ~a:(base_of a) ~b:(base_of b)
            ~words:(min (small_words a) (small_words b)))
  | 2 ->
    let a = pick () in
    Some
      (K.table_lookup fb ~index:(base_of a) ~table:(base_of (pick ()))
         ~table_words:64 ~count:(small_words a))
  | 3 ->
    let a = pick () in
    Some
      (K.branchy_scan fb ~src:(base_of a) ~words:(small_words a)
         ~bias_mod:(2 + Prelude.Rng.int rng 7))
  | 4 ->
    let a = pick () in
    K.invariant_heavy_loop fb ~src:(base_of a) ~dst:(base_of (pick ()))
      ~words:(small_words a) ~param:(Prelude.Rng.int rng 100);
    None
  | 5 ->
    let a = pick () in
    K.redundant_expr_loop fb ~src:(base_of a) ~dst:(base_of (pick ()))
      ~words:(small_words a);
    None
  | 6 ->
    let a = pick () in
    K.range_checked_loop fb ~src:(base_of a) ~dst:(base_of (pick ()))
      ~words:(small_words a);
    None
  | 7 ->
    let a = pick () in
    K.mode_switched_loop fb ~src:(base_of a) ~dst:(base_of (pick ()))
      ~words:(small_words a) ~mode:(Prelude.Rng.int rng 2);
    None
  | 8 ->
    let a = pick () in
    K.double_store_loop fb ~buf:(base_of a) ~words:(small_words a);
    None
  | _ ->
    let a = pick () in
    Some
      (K.crypto_rounds fb ~state:(base_of a) ~sbox:(base_of (pick ()))
         ~sbox_words:64
         ~rounds:(min 16 (small_words a))
         ~unroll:(1 + Prelude.Rng.int rng 6))

let generate rng =
  let b = B.create () in
  let n_arrays = 2 + Prelude.Rng.int rng 3 in
  let arrays =
    Array.init n_arrays (fun i ->
        let words = 64 + Prelude.Rng.int rng 129 in
        let init =
          match Prelude.Rng.int rng 3 with
          | 0 -> Zeros
          | 1 ->
            Ramp
              { start = Prelude.Rng.int rng 100; step = 1 + Prelude.Rng.int rng 7 }
          | _ ->
            Pseudo_random
              { seed = Prelude.Rng.int rng 10000; bound = 1 lsl 16 }
        in
        (B.array b (Printf.sprintf "a%d" i) ~words ~init, words))
  in
  (* A couple of callable helpers so inlining and sibling calls fire. *)
  K.def_leaf_scale b "h_scale" ~m:(1 + Prelude.Rng.int rng 15)
    ~a:(Prelude.Rng.int rng 64) ~s:(Prelude.Rng.int rng 4);
  K.def_helper_mix ~steps:(3 + Prelude.Rng.int rng 8) b "h_mix";
  B.func b "main" ~nparams:0 (fun fb _ ->
      let accs = ref [] in
      let n_kernels = 1 + Prelude.Rng.int rng 4 in
      for _ = 1 to n_kernels do
        match random_kernel rng fb ~arrays with
        | Some r -> accs := r :: !accs
        | None -> ()
      done;
      (* Fold helper calls and array contents into the checksum. *)
      let z = B.call fb "h_scale" [ Imm (Prelude.Rng.int rng 1000) ] in
      let z2 = B.call fb "h_mix" [ Reg z; Imm 3 ] in
      let acc =
        List.fold_left
          (fun acc r -> B.alu fb Xor (Reg acc) (Reg r))
          z2 !accs
      in
      let base, words = arrays.(0) in
      let total = K.reduce_xor fb ~base ~words (Reg acc) in
      B.terminate fb (Return (Some (Reg total))));
  B.finish b ~entry:"main"
