(* Tests for the microarchitecture space and the Cacti-style model. *)

let check = Alcotest.check

let test_space_cardinality () =
  check Alcotest.int "table 2: 288000 configurations" 288000
    (Uarch.Space.cardinality Uarch.Space.Base);
  check Alcotest.int "extended space" (288000 * 10)
    (Uarch.Space.cardinality Uarch.Space.Extended)

let test_xscale_valid () = Uarch.Config.validate Uarch.Config.xscale

let test_all_enumerated_valid () =
  (* A systematic stride through the full space. *)
  let n = Uarch.Space.cardinality Uarch.Space.Base in
  let i = ref 0 in
  while !i < n do
    Uarch.Config.validate (Uarch.Space.nth Uarch.Space.Base !i);
    i := !i + 997
  done

let test_nth_bounds () =
  Alcotest.check_raises "negative" (Invalid_argument "Space.nth") (fun () ->
      ignore (Uarch.Space.nth Uarch.Space.Base (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Space.nth") (fun () ->
      ignore (Uarch.Space.nth Uarch.Space.Base 288000))

let test_sample_deterministic_and_distinct () =
  let a = Uarch.Space.sample Uarch.Space.Base ~seed:42 50 in
  let b = Uarch.Space.sample Uarch.Space.Base ~seed:42 50 in
  check Alcotest.bool "deterministic" true (a = b);
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun c ->
      let key = Uarch.Config.to_string c in
      if Hashtbl.mem seen key then Alcotest.failf "duplicate sample %s" key;
      Hashtbl.add seen key ())
    a

let test_sample_covers_space () =
  (* Uniform sampling over 200 points should hit small and large caches. *)
  let sample = Uarch.Space.sample Uarch.Space.Base ~seed:1 200 in
  let has p = Array.exists p sample in
  check Alcotest.bool "some small I$" true
    (has (fun c -> c.Uarch.Config.il1_size = 4096));
  check Alcotest.bool "some large I$" true
    (has (fun c -> c.Uarch.Config.il1_size = 131072))

let test_descriptors () =
  let d = Uarch.Config.descriptors Uarch.Config.xscale in
  check Alcotest.int "8 descriptors" 8 (Array.length d);
  check (Alcotest.float 1e-9) "log2 of 32K" 15.0 d.(0);
  let e = Uarch.Config.descriptors_extended Uarch.Config.xscale in
  check Alcotest.int "10 extended" 10 (Array.length e)

let test_sets_computation () =
  let u = Uarch.Config.xscale in
  (* 32K / (32B * 32 ways) = 32 sets. *)
  check Alcotest.int "il1 sets" 32 (Uarch.Config.il1_sets u);
  check Alcotest.int "btb sets" 512 (Uarch.Config.btb_sets u)

let test_cacti_monotone_in_size () =
  let prev = ref 0.0 in
  Array.iter
    (fun size ->
      let t = Uarch.Cacti.access_time_ns ~size ~assoc:4 ~block:32 in
      if t <= !prev then Alcotest.failf "access time not increasing at %d" size;
      prev := t)
    Uarch.Config.il1_sizes

let test_cacti_monotone_in_assoc () =
  let prev = ref 0.0 in
  Array.iter
    (fun assoc ->
      let t = Uarch.Cacti.access_time_ns ~size:32768 ~assoc ~block:32 in
      if t <= !prev then Alcotest.failf "access time not increasing at %d ways" assoc;
      prev := t)
    Uarch.Config.assocs

let test_cacti_cycles_scale_with_frequency () =
  let c400 = Uarch.Cacti.memory_cycles ~freq_mhz:400 in
  let c600 = Uarch.Cacti.memory_cycles ~freq_mhz:600 in
  check Alcotest.bool "faster core pays more cycles per miss" true (c600 > c400)

let test_figure1_configs () =
  check Alcotest.int "three configurations" 3
    (Array.length Uarch.Space.figure1_configs);
  Array.iter
    (fun (_, u) -> Uarch.Config.validate u)
    Uarch.Space.figure1_configs

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "uarch"
    [
      ( "space",
        [
          quick "cardinality" test_space_cardinality;
          quick "xscale valid" test_xscale_valid;
          quick "enumeration valid" test_all_enumerated_valid;
          quick "nth bounds" test_nth_bounds;
          quick "sampling" test_sample_deterministic_and_distinct;
          quick "sample coverage" test_sample_covers_space;
          quick "descriptors" test_descriptors;
          quick "set computation" test_sets_computation;
          quick "figure 1 configs" test_figure1_configs;
        ] );
      ( "cacti",
        [
          quick "monotone in size" test_cacti_monotone_in_size;
          quick "monotone in assoc" test_cacti_monotone_in_assoc;
          quick "frequency scaling" test_cacti_cycles_scale_with_frequency;
        ] );
    ]
